// Package service implements goldrecd's HTTP consolidation service: a
// managed registry of uploaded datasets and per-column review sessions,
// exposing the paper's largest-group-first verification loop
// (Algorithm 1) to remote reviewers over JSON.
//
// The service model maps the library onto long-lived server state:
//
//   - A dataset is an uploaded clustered CSV wrapped in a
//     goldrec.Consolidator, addressed by an opaque id.
//   - A column session owns the review of one column. Candidate
//     generation and incremental grouping run in a background
//     goroutine that keeps a small buffer of pending groups ahead of
//     the reviewer, so group discovery overlaps with human review
//     latency instead of blocking each fetch.
//   - Decisions arrive by group id (goldrec.Session.Decide), so
//     reviewers need no in-process pointers and can reconnect at any
//     time (goldrec.Session.ReviewState rebuilds their view).
//
// Concurrency: the registries are sharded — ids hash to one of N
// shards (Options.Shards, default GOMAXPROCS), each with its own
// RWMutex, id→entry map and TTL janitor — so traffic on distinct
// datasets or sessions almost never contends on a shared lock, and an
// eviction sweep of one shard never blocks lookups on another. Each
// column session serializes access to its goldrec.Session with its own
// mutex; and a per-dataset RWMutex lets sessions on distinct columns
// apply concurrently (read side) while golden-record export (write
// side) sees a quiescent dataset.
//
// Multi-tenancy: with Options.Tenants set, every request authenticates
// with an API key and runs inside a Scope — datasets and sessions carry
// their owning tenant, every lookup, listing and plan filters by it
// (foreign ids read as 404), and the registry's quotas (datasets,
// sessions, upload bytes) and decisions/sec token buckets are enforced
// with 403/413/429. Without it the service behaves exactly as before
// tenancy existed: one implicit, unlimited, unauthenticated principal.
//
// Durability: every state transition is persisted through a store.Store
// before it is acknowledged — uploads snapshot the dataset, session
// opens record their meta, and each decision is appended to the
// session's write-ahead log before the apply. With a persistent store,
// TTL eviction is passivation: the in-memory state is dropped (it is
// already durable) and transparently rebuilt from snapshot + WAL replay
// on the next touch; restarts rebuild everything the same way
// (Recover). With the default store.Null, eviction deletes, exactly as
// before persistence existed. Datasets passivate as a unit — a session
// is only ever evicted together with its dataset, because WAL replay
// reconstructs a session by regenerating its groups against the
// snapshot's column values.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/goldrec/goldrec"
	"github.com/goldrec/goldrec/internal/events"
	"github.com/goldrec/goldrec/internal/library"
	"github.com/goldrec/goldrec/internal/obs"
	"github.com/goldrec/goldrec/internal/obs/trace"
	"github.com/goldrec/goldrec/internal/store"
	"github.com/goldrec/goldrec/internal/tenant"
	"github.com/goldrec/goldrec/table"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotFound means the dataset or session id is unknown (or was
	// evicted).
	ErrNotFound = errors.New("not found")
	// ErrConflict means the request collides with live state (for
	// example, a second session on a column under review).
	ErrConflict = errors.New("conflict")
	// ErrLimit means the -max-sessions cap is reached.
	ErrLimit = errors.New("session limit reached")
	// ErrClosed means the service is shutting down.
	ErrClosed = errors.New("service closed")
	// ErrStorage means the persistence backend failed; the request was
	// not durably recorded and must be retried.
	ErrStorage = errors.New("storage failure")
)

const (
	defaultPrefetch = 8
	defaultTTL      = 30 * time.Minute
)

// Options configure a Service.
type Options struct {
	// TTL evicts datasets and sessions idle longer than this
	// (0 = 30m; negative = never evict).
	TTL time.Duration
	// MaxSessions caps live column sessions across all datasets
	// (0 = unlimited).
	MaxSessions int
	// Prefetch is how many undecided groups a session's generator
	// keeps ready ahead of the reviewer (0 = 8).
	Prefetch int
	// Logf, when set, receives one line per notable event.
	Logf func(format string, args ...any)
	// JanitorInterval is how often the eviction janitor runs
	// (0 = TTL/4, only meaningful with a positive TTL).
	JanitorInterval time.Duration
	// Store persists datasets and decision WALs (nil = store.Null:
	// nothing persists and eviction deletes). The service does not
	// close the store; its owner does, after Close.
	Store store.Store
	// MaxUploadBytes caps the request body of a dataset upload
	// (0 = unlimited).
	MaxUploadBytes int64
	// Shards is how many lock shards each registry is partitioned into
	// (0 = GOMAXPROCS). Traffic on distinct datasets contends only when
	// their ids hash to the same shard; each shard gets its own TTL
	// janitor. Shard count does not affect durable state: the same
	// store directory recovers identically under any value.
	Shards int

	// Tenants enables multi-tenant operation: every /v1 request must
	// authenticate with an API key, datasets and sessions are owned by
	// (and visible only to) the tenant that created them, and the
	// registry's quotas and decision rate limits are enforced. nil =
	// open mode, the pre-tenancy behavior: no authentication, every
	// caller unscoped.
	Tenants *tenant.Registry
	// AdminKey is the bootstrap admin API key. A request presenting it
	// is unscoped (sees every tenant's data) and may call the
	// /v1/tenants admin API. Only its SHA-256 is retained after New.
	// Meaningful only with Tenants set.
	AdminKey string

	// Metrics is the observability registry the service records into
	// (nil = a private registry, still served on /metrics/prometheus).
	// Pass obs.Noop() to disable instrumentation entirely.
	Metrics *obs.Registry
	// Logger receives one structured record per HTTP request, with
	// request id, tenant and route attached from the request context
	// (nil = no request logging).
	Logger *slog.Logger
	// Tracer records request-scoped span traces into its flight
	// recorder: the middleware opens a root span per request (honoring
	// an inbound W3C traceparent header), the engine and store layers
	// attach phase and durability spans, and completed traces are
	// retained tail-first per route (recent/slow/errored). nil = no
	// tracing, at zero per-request cost. Mount Tracer.Handler() on a
	// private listener to browse the recorder.
	Tracer *trace.Tracer

	// Events is the audit/event log every mutating operation publishes
	// into, exposed live on GET /v1/events. The service does not own it
	// (like Store): its owner opens it before New and closes it after
	// Close. nil = events disabled, every emission a no-op.
	Events *events.Log

	// BuildInfo identifies the running binary (ldflags-stamped version
	// and commit); surfaced on /healthz and in the startup log.
	BuildInfo BuildInfo

	// SSEHeartbeat is how often an idle SSE stream writes a heartbeat
	// comment so intermediaries keep the connection open (0 = 15s).
	SSEHeartbeat time.Duration

	// clock substitutes time in tests (nil = wall clock).
	clock Clock
}

// BuildInfo identifies the running binary.
type BuildInfo struct {
	Version string `json:"version,omitempty"`
	Commit  string `json:"commit,omitempty"`
}

// Service owns the dataset and session registries.
type Service struct {
	opts     Options
	store    store.Store
	clock    Clock
	datasets *shardedRegistry[*dataset]
	sessions *shardedRegistry[*columnSession]
	metrics  *serviceMetrics
	logger   *slog.Logger
	tracer   *trace.Tracer
	events   *events.Log

	// library is the per-tenant durable transformation memory: every
	// acknowledged verdict is recorded into the owning tenant's library,
	// and session opens consult it for warm-start priors.
	library *library.Registry

	// ready flips once the owner finishes startup recovery (MarkReady);
	// /readyz serves 503 until then, while /healthz stays live.
	ready atomic.Bool

	// adminHash is the SHA-256 of Options.AdminKey; hasAdmin marks it
	// valid (so an empty AdminKey can never authenticate).
	adminHash [sha256.Size]byte
	hasAdmin  bool

	mu     sync.Mutex // guards closed and the session-count check-and-add
	closed bool

	// drain closes when graceful shutdown begins (BeginDrain): every
	// open SSE stream sends a close event and returns, and long-polling
	// group fetches cancel their waits, so the HTTP server's Shutdown
	// deadline is spent on real work, not parked connections.
	drain     chan struct{}
	drainOnce sync.Once

	// admitMu serializes one tenant's resource admissions (dataset and
	// session creates) so a quota check-and-register is atomic per
	// tenant: two concurrent creates cannot both pass the same last
	// quota slot. Keyed by tenant id; guarded by mu. Lock ordering:
	// admission mutex before mu.
	admitMu map[string]*sync.Mutex

	// restoreMu serializes passivation misses so one goroutine rebuilds
	// a dataset while the others wait and then find it live. One mutex
	// per dataset shard: restores of datasets on distinct shards (and
	// boot-time recovery goroutines) proceed in parallel.
	restoreMu []sync.Mutex

	janitorStop chan struct{}
	janitorDone sync.WaitGroup
}

// New returns a ready Service and starts its eviction janitor (when the
// TTL is positive). Call Close to stop it.
func New(opts Options) *Service {
	if opts.TTL == 0 {
		opts.TTL = defaultTTL
	}
	if opts.TTL < 0 {
		opts.TTL = 0
	}
	if opts.Prefetch <= 0 {
		opts.Prefetch = defaultPrefetch
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.clock == nil {
		opts.clock = realClock{}
	}
	if opts.Store == nil {
		opts.Store = store.Null{}
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Library load failures must not hold the whole service down (same
	// stance as dataset recovery): log and start with an empty memory —
	// the snapshots and change logs stay on disk for a later boot.
	lib, err := library.Open(opts.Store)
	if err != nil {
		opts.Logf("library: load failed, starting empty: %v", err)
		lib, _ = library.Open(nil)
	}
	s := &Service{
		opts:      opts,
		store:     opts.Store,
		clock:     opts.clock,
		datasets:  newRegistry[*dataset]("ds", opts.Shards, opts.TTL, opts.clock),
		sessions:  newRegistry[*columnSession]("cs", opts.Shards, opts.TTL, opts.clock),
		metrics:   newServiceMetrics(reg),
		logger:    opts.Logger,
		tracer:    opts.Tracer,
		events:    opts.Events,
		drain:     make(chan struct{}),
		library:   lib,
		restoreMu: make([]sync.Mutex, opts.Shards),
		admitMu:   make(map[string]*sync.Mutex),
	}
	if opts.AdminKey != "" {
		s.adminHash = sha256.Sum256([]byte(opts.AdminKey))
		s.hasAdmin = true
		s.opts.AdminKey = "" // only the hash is needed past this point
	}
	if opts.TTL > 0 {
		interval := opts.JanitorInterval
		if interval <= 0 {
			interval = opts.TTL / 4
		}
		s.janitorStop = make(chan struct{})
		// One janitor per shard: a sweep only ever holds one shard's
		// lock, so eviction on a cold shard never stalls a hot one.
		for i := 0; i < opts.Shards; i++ {
			s.janitorDone.Add(1)
			go s.janitor(i, interval)
		}
	}
	return s
}

// Shards returns the registries' shard count.
func (s *Service) Shards() int { return s.opts.Shards }

// MarkReady flips /readyz to 200. The daemon calls it after Recover()
// completes; a service that never recovers anything may call it
// immediately after New.
func (s *Service) MarkReady() { s.ready.Store(true) }

// Ready reports whether MarkReady has been called.
func (s *Service) Ready() bool { return s.ready.Load() }

// BeginDrain starts graceful shutdown of the streaming endpoints:
// every open SSE stream writes a close event and returns, long-polling
// group fetches wake and answer immediately. Idempotent; Close calls
// it too. The daemon calls it right before http.Server.Shutdown so the
// drain deadline is not spent waiting out parked streams.
func (s *Service) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return chanClosed(s.drain) }

// Close stops the janitor and every session generator. In-flight HTTP
// requests against removed sessions fail with ErrNotFound.
func (s *Service) Close() {
	s.BeginDrain()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.janitorStop != nil {
		close(s.janitorStop)
		s.janitorDone.Wait()
	}
	for _, cs := range s.sessions.list() {
		s.closeSession(cs)
	}
	for _, d := range s.datasets.list() {
		s.datasets.remove(d.id)
	}
	// Shutdown hygiene: fold every tenant's library change log into a
	// fresh snapshot (recovery never requires it, but boots load faster).
	s.library.Snapshot()
}

// janitor sweeps one shard of both registries on its own ticker.
func (s *Service) janitor(shard int, interval time.Duration) {
	defer s.janitorDone.Done()
	t := s.clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C():
			ds, cs := s.evictExpiredShard(shard)
			if ds+cs > 0 {
				s.opts.Logf("janitor[%d]: evicted %d dataset(s), %d session(s)", shard, ds, cs)
			}
		}
	}
}

// EvictExpired removes idle state and reports how many datasets and
// sessions went. The semantics depend on the store:
//
//   - Memory-only (store.Null): eviction is deletion, and idle sessions
//     are evicted individually (an abandoned session must not pin its
//     column and -max-sessions slot forever just because its dataset
//     stays hot).
//   - Persistent store: eviction is passivation — state stays on disk
//     and the next touch restores it — and a dataset passivates as a
//     unit with its sessions. Sessions are never passivated alone: WAL
//     replay rebuilds a session against the snapshot's column values,
//     which a still-live, already-mutated dataset does not have.
//     (Session touches refresh the dataset, so an idle dataset implies
//     idle sessions.)
//
// The per-shard janitors call evictExpiredShard periodically; tests
// call EvictExpired (a full sweep) directly with a fake clock.
func (s *Service) EvictExpired() (datasetsEvicted, sessionsEvicted int) {
	for i := 0; i < s.opts.Shards; i++ {
		ds, cs := s.evictExpiredShard(i)
		datasetsEvicted += ds
		sessionsEvicted += cs
	}
	return datasetsEvicted, sessionsEvicted
}

// evictExpiredShard sweeps shard i of both registries. A dataset's
// sessions are found through its own column→session table rather than
// a scan of the whole session registry, so evicting one dataset is
// O(its sessions), never O(all sessions).
func (s *Service) evictExpiredShard(i int) (datasetsEvicted, sessionsEvicted int) {
	if !s.persistent() {
		for _, id := range s.sessions.expiredShard(i) {
			if cs, ok := s.sessions.get(id); ok {
				s.closeSession(cs)
				sessionsEvicted++
			}
		}
	}
	for _, id := range s.datasets.expiredShard(i) {
		d, ok := s.datasets.remove(id)
		if !ok {
			continue
		}
		datasetsEvicted++
		// A dataset takes its sessions with it. Their decision WALs are
		// already durable (appends precede acknowledgements), so
		// passivation writes nothing.
		for _, cs := range s.datasetSessions(d) {
			s.closeSession(cs)
			sessionsEvicted++
		}
	}
	return datasetsEvicted, sessionsEvicted
}

// datasetSessions returns the live sessions registered on d's columns.
func (s *Service) datasetSessions(d *dataset) []*columnSession {
	d.mu.Lock()
	ids := make([]string, 0, len(d.columns))
	for _, sid := range d.columns {
		ids = append(ids, sid)
	}
	d.mu.Unlock()
	sort.Strings(ids)
	out := make([]*columnSession, 0, len(ids))
	for _, sid := range ids {
		if cs, ok := s.sessions.get(sid); ok {
			out = append(out, cs)
		}
	}
	return out
}

// persistent reports whether evicted state is restorable from the
// store.
func (s *Service) persistent() bool {
	_, null := s.store.(store.Null)
	return !null
}

// dataset wraps one uploaded Consolidator.
type dataset struct {
	id      string
	created time.Time
	keyCol  string
	// owner is the id of the tenant the dataset belongs to ("" = open
	// mode or admin-created: unowned, visible only to unscoped callers).
	owner string
	cons  *goldrec.Consolidator

	// applyMu orders column writes against whole-dataset reads:
	// sessions hold the read side while applying (distinct columns
	// never conflict), exports hold the write side so they see a
	// quiescent dataset.
	applyMu sync.RWMutex

	// mu guards columns, the one-session-per-column invariant.
	mu      sync.Mutex
	columns map[int]string // column index → owning session id
}

// columnSession owns the review of one column. All fields below mu are
// guarded by it; cond is signaled whenever pending, exhausted, closed
// or sess change.
type columnSession struct {
	id        string
	datasetID string
	column    string
	col       int
	// owner mirrors the dataset's owning tenant: a session is always
	// owned by (and counted against) its dataset's tenant.
	owner string
	d     *dataset
	// resume makes the generator replay the session's WAL (restoring a
	// passivated or pre-restart session) before producing new groups.
	resume bool

	mu   sync.Mutex
	cond *sync.Cond
	// rev counts state changes a groups reader could observe (pending,
	// status). SSE group streams hold the last rev they rendered and
	// wait for it to move — bumpLocked is the only writer.
	rev       uint64
	sess      *goldrec.Session // nil until candidate generation finishes
	pending   []*goldrec.Group // issued, undecided, oldest first
	exhausted bool
	closed    bool
	// stalled means the generator stopped because the store rejected an
	// issue append; see StatusStalled.
	stalled bool
	// compacted means this session's decisions were folded into the
	// dataset snapshot and its WAL deleted.
	compacted bool
	// archived replaces sess for a session restored after compaction:
	// the final ReviewState is served from the archive and no further
	// decisions are possible.
	archived *goldrec.ReviewState
}

// createDataset ingests a clustered CSV (key column identifies
// clusters; optional source column populates Record.Source) and
// registers it under the owning tenant ("" = unowned). The context
// carries the request's trace span, if any.
func (s *Service) createDataset(ctx context.Context, owner, name, keyCol, srcCol string, csv io.Reader) (DatasetInfo, error) {
	if err := s.alive(); err != nil {
		return DatasetInfo{}, err
	}
	if name == "" {
		name = "dataset"
	}
	if keyCol == "" {
		return DatasetInfo{}, fmt.Errorf("missing key column name")
	}
	// Parse before any admission lock: the body read is paced by the
	// client's network, and holding the tenant's lock across it would
	// let one slow upload freeze the tenant's whole write path.
	ds, err := table.ReadCSV(csv, name, keyCol, srcCol)
	if err != nil {
		return DatasetInfo{}, err
	}
	cons, err := goldrec.New(ds)
	if err != nil {
		return DatasetInfo{}, err
	}
	d := &dataset{
		created: s.clock.Now(),
		keyCol:  keyCol,
		owner:   owner,
		cons:    cons,
		columns: make(map[int]string),
	}
	if owner != "" {
		// The admission lock covers only check-and-register: once the
		// dataset is in the registry it counts against the quota, so the
		// slot is reserved and the (slow) snapshot write can happen
		// outside the lock.
		mu := s.admissionLock(owner)
		mu.Lock()
		if q, ok := s.quotasFor(owner); ok && q.MaxDatasets > 0 {
			if n := s.ownedDatasetCount(owner); n >= q.MaxDatasets {
				mu.Unlock()
				return DatasetInfo{}, fmt.Errorf("%w: dataset quota reached (max %d)", ErrQuota, q.MaxDatasets)
			}
		}
		s.datasets.add(d, func(id string) { d.id = id })
		mu.Unlock()
	} else {
		s.datasets.add(d, func(id string) { d.id = id })
	}
	// Snapshot before acknowledging, and before any session can mutate
	// the dataset: this version-1 snapshot is what every session WAL
	// replays over.
	meta := store.DatasetMeta{ID: d.id, Name: ds.Name, KeyCol: keyCol, Created: d.created, Owner: owner}
	if err := s.store.PutDataset(ctx, meta, ds); err != nil {
		s.datasets.remove(d.id)
		return DatasetInfo{}, fmt.Errorf("%w: snapshotting dataset: %v", ErrStorage, err)
	}
	s.opts.Logf("dataset %s: %q ingested (%d clusters, %d records)",
		d.id, name, len(ds.Clusters), ds.NumRecords())
	s.emitEvent(ctx, events.Event{
		Type:    events.TypeDatasetUploaded,
		Tenant:  owner,
		Dataset: d.id,
		Data: map[string]any{
			"name":     ds.Name,
			"clusters": len(ds.Clusters),
			"records":  ds.NumRecords(),
		},
	})
	return s.datasetInfo(d), nil
}

// getDataset returns a live dataset, transparently reactivating a
// passivated one from the store.
func (s *Service) getDataset(id string) (*dataset, error) {
	if d, ok := s.datasets.get(id); ok {
		return d, nil
	}
	d, _, err := s.restoreDataset(id)
	return d, err
}

// lookupDataset is getDataset plus tenant visibility: when owner is
// set, a dataset belonging to anyone else reads as missing — 404,
// never 403, so ids cannot be probed across tenants. The ownership is
// resolved BEFORE any side effect (no idle-timer refresh, no
// passivation restore): a foreign probe must not keep the victim's
// dataset alive or pull it back into memory.
func (s *Service) lookupDataset(owner, id string) (*dataset, error) {
	if owner != "" {
		if d, ok := s.datasets.peek(id); ok {
			if d.owner != owner {
				return nil, fmt.Errorf("dataset %s: %w", id, ErrNotFound)
			}
		} else if m, ok := s.storedDatasetMeta(id); !ok || m.Owner != owner {
			return nil, fmt.Errorf("dataset %s: %w", id, ErrNotFound)
		}
	}
	d, err := s.getDataset(id)
	if err != nil {
		return nil, err
	}
	if owner != "" && d.owner != owner {
		return nil, fmt.Errorf("dataset %s: %w", id, ErrNotFound)
	}
	return d, nil
}

// getDatasetInfo returns a dataset's info and refreshes its idle timer.
func (s *Service) getDatasetInfo(owner, id string) (DatasetInfo, error) {
	d, err := s.lookupDataset(owner, id)
	if err != nil {
		return DatasetInfo{}, err
	}
	return s.datasetInfo(d), nil
}

// listDatasets returns the owner-visible live datasets in creation
// order, followed by any passivated datasets still restorable from the
// store (marked Passive, with only their meta fields populated —
// restoring each just to count its clusters would defeat passivation).
// An empty owner sees everything.
func (s *Service) listDatasets(owner string) []DatasetInfo {
	ds := s.datasets.list()
	out := make([]DatasetInfo, 0, len(ds))
	live := make(map[string]bool, len(ds))
	for _, d := range ds {
		live[d.id] = true
		if owner != "" && d.owner != owner {
			continue
		}
		out = append(out, s.datasetInfo(d))
	}
	metas, err := s.store.ListDatasets()
	if err != nil {
		s.opts.Logf("listing stored datasets: %v", err)
		return out
	}
	for _, m := range metas {
		if live[m.ID] || (owner != "" && m.Owner != owner) {
			continue
		}
		out = append(out, DatasetInfo{ID: m.ID, Name: m.Name, Created: m.Created, Passive: true})
	}
	return out
}

// deleteDataset removes a dataset and closes its sessions. Unlike
// eviction, deletion purges the durable state too: a deleted dataset is
// gone for good. It holds the dataset's shard restore lock so a
// concurrent touch of one of the dataset's ids cannot resurrect it from
// the store between the in-memory remove and the durable purge.
func (s *Service) deleteDataset(owner, id string) error {
	mu := &s.restoreMu[s.datasets.shardIndex(id)]
	mu.Lock()
	defer mu.Unlock()
	if owner != "" {
		// Resolve ownership before removing anything: a foreign id must
		// read as missing with no side effects. Live entries answer from
		// memory; passivated ones from the store meta.
		if d, ok := s.datasets.get(id); ok {
			if d.owner != owner {
				return fmt.Errorf("dataset %s: %w", id, ErrNotFound)
			}
		} else if m, ok := s.storedDatasetMeta(id); !ok || m.Owner != owner {
			return fmt.Errorf("dataset %s: %w", id, ErrNotFound)
		}
	}
	_, live := s.datasets.remove(id)
	if !live {
		// Not in memory — it may still be a passivated dataset in the
		// store, which DELETE must also purge.
		if _, ok := s.storedDatasetMeta(id); !ok {
			return fmt.Errorf("dataset %s: %w", id, ErrNotFound)
		}
	}
	// Deletion is a cold path, so a full scan (shard by shard, no
	// cross-shard lock) is an acceptable safety net: it also catches a
	// session whose dataset entry is already gone.
	var victims []*columnSession
	s.sessions.rangeAll(func(_ string, cs *columnSession) bool {
		if cs.datasetID == id {
			victims = append(victims, cs)
		}
		return true
	})
	for _, cs := range victims {
		s.closeSession(cs)
	}
	if err := s.store.DeleteDataset(id); err != nil {
		return fmt.Errorf("%w: deleting dataset %s: %v", ErrStorage, id, err)
	}
	s.opts.Logf("dataset %s: deleted", id)
	return nil
}

// ownedDatasetCount counts the datasets a tenant owns: live ones via a
// lock-free-ish shard walk (no info building), passivated ones via one
// pass over the store's meta listing. The store scan is inherent to
// the Store interface (no per-owner index yet) but runs only on
// quota-limited uploads.
func (s *Service) ownedDatasetCount(owner string) int {
	n := 0
	live := make(map[string]bool)
	s.datasets.rangeAll(func(id string, d *dataset) bool {
		live[id] = true
		if d.owner == owner {
			n++
		}
		return true
	})
	metas, err := s.store.ListDatasets()
	if err != nil {
		s.opts.Logf("listing stored datasets: %v", err)
		return n
	}
	for _, m := range metas {
		if !live[m.ID] && m.Owner == owner {
			n++
		}
	}
	return n
}

// storedDatasetMeta returns the store's meta for a dataset, if any. It
// scans the (small) meta listing; deletes are rare enough that a
// dedicated point lookup has not been worth widening the Store
// interface for.
func (s *Service) storedDatasetMeta(id string) (store.DatasetMeta, bool) {
	metas, err := s.store.ListDatasets()
	if err != nil {
		return store.DatasetMeta{}, false
	}
	for _, m := range metas {
		if m.ID == id {
			return m, true
		}
	}
	return store.DatasetMeta{}, false
}

func (s *Service) datasetInfo(d *dataset) DatasetInfo {
	ds := d.cons.Dataset()
	d.mu.Lock()
	sessions := make([]string, 0, len(d.columns))
	for _, sid := range d.columns {
		sessions = append(sessions, sid)
	}
	d.mu.Unlock()
	sort.Strings(sessions)
	return DatasetInfo{
		ID:       d.id,
		Name:     ds.Name,
		Attrs:    append([]string(nil), ds.Attrs...),
		Clusters: len(ds.Clusters),
		Records:  ds.NumRecords(),
		Created:  d.created,
		Sessions: sessions,
	}
}

// openSession starts reviewing one column of a dataset. Candidate
// generation and grouping run in a background goroutine; the call
// returns as soon as the session is registered. The session belongs to
// the dataset's tenant, whose MaxSessions quota it counts against
// (even when an unscoped admin opens it).
//
// The context carries the opening request's trace span: the generator
// goroutine detaches it (span only, no cancellation) so the engine's
// context_prep/graph_build/group_search work records on the trace of
// the request that opened the session, even though the goroutine
// outlives it.
func (s *Service) openSession(ctx context.Context, owner, datasetID, column string) (SessionInfo, error) {
	if err := s.alive(); err != nil {
		return SessionInfo{}, err
	}
	d, err := s.lookupDataset(owner, datasetID)
	if err != nil {
		return SessionInfo{}, err
	}
	col := d.cons.Dataset().ColumnIndex(column)
	if col < 0 {
		return SessionInfo{}, fmt.Errorf("dataset %s has no column %q", datasetID, column)
	}
	if subject := d.owner; subject != "" {
		mu := s.admissionLock(subject)
		mu.Lock()
		defer mu.Unlock()
		if q, ok := s.quotasFor(subject); ok && q.MaxSessions > 0 {
			if n := s.ownedLiveSessions(subject); n >= q.MaxSessions {
				return SessionInfo{}, fmt.Errorf("%w: session quota reached (max %d)", ErrQuota, q.MaxSessions)
			}
		}
	}

	s.mu.Lock()
	// Re-check closed under the same hold that registers the session:
	// a session slipping in after Close() listed the live ones would
	// leak its generator goroutine forever.
	if s.closed {
		s.mu.Unlock()
		return SessionInfo{}, ErrClosed
	}
	if s.opts.MaxSessions > 0 && s.sessions.size() >= s.opts.MaxSessions {
		s.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("%w (max %d)", ErrLimit, s.opts.MaxSessions)
	}
	cs := &columnSession{datasetID: datasetID, column: column, col: col, owner: d.owner, d: d}
	cs.cond = sync.NewCond(&cs.mu)
	d.mu.Lock()
	if owner, busy := d.columns[col]; busy {
		d.mu.Unlock()
		s.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("column %q is under review by session %s: %w", column, owner, ErrConflict)
	}
	s.sessions.add(cs, func(id string) { cs.id = id })
	d.columns[col] = cs.id
	d.mu.Unlock()
	s.mu.Unlock()

	// Persist the session before its generator can append WAL records
	// (the store needs the session registered to accept appends). A
	// session that cannot be persisted must not run.
	meta := store.SessionMeta{ID: cs.id, DatasetID: datasetID, Column: column, Created: s.clock.Now(), Owner: cs.owner}
	if err := s.store.PutSession(meta); err != nil {
		s.closeSession(cs)
		return SessionInfo{}, fmt.Errorf("%w: persisting session: %v", ErrStorage, err)
	}

	// Detach keeps only the trace span; re-attach the request info and
	// principal so group.ready events the generator emits carry the
	// opening request's id, trace, and actor.
	runCtx := trace.Detach(ctx)
	if info, ok := obs.RequestFrom(ctx); ok {
		runCtx = obs.WithRequest(runCtx, info)
	}
	if p, ok := ctx.Value(principalCtxKey{}).(principal); ok {
		runCtx = context.WithValue(runCtx, principalCtxKey{}, p)
	}
	// Emit before the generator starts so session.opened always
	// precedes the session's first group.ready in the event sequence.
	s.emitEvent(ctx, events.Event{
		Type:    events.TypeSessionOpened,
		Tenant:  cs.owner,
		Dataset: datasetID,
		Session: cs.id,
		Data:    map[string]any{"column": column},
	})
	go cs.run(runCtx, s)
	s.opts.Logf("session %s: opened on dataset %s column %q", cs.id, datasetID, column)
	return cs.info(), nil
}

// run is the session's background producer: build the goldrec.Session
// (candidate generation), replay the WAL when resuming, then keep up to
// prefetch undecided groups buffered ahead of the reviewer. Every new
// group is logged to the WAL before it becomes visible, so the durable
// log always describes a prefix of the in-memory state.
//
// ctx carries only the opening request's trace span (already detached
// by openSession): spans the generator records — engine phases, WAL
// issue appends — attach to that trace until its span cap, which is
// how "why was upload→first-group slow?" stays answerable even though
// the work happens here, after the HTTP response.
func (cs *columnSession) run(ctx context.Context, s *Service) {
	logf := s.opts.Logf
	openedAt := time.Now()
	// Resolve the warm-start context before building the session: fresh
	// sessions freeze the library's current priors into the WAL's first
	// record, resuming ones read that frozen record back — either way
	// the engine below is built from exactly what the WAL describes.
	warm, err := cs.openWarm(ctx, s)
	if err != nil {
		logf("session %s: reading warm-start record failed, closing session: %v", cs.id, err)
		s.closeSession(cs)
		return
	}
	// Keep a pristine copy of a resuming session's column: a failed
	// replay must roll the live dataset back, or the half-replayed
	// column would diverge from what the store will rebuild after a
	// restart. Captured before the session build, because warm
	// pre-application already mutates the column there.
	var pristine [][]string
	if cs.resume {
		cs.d.applyMu.RLock()
		pristine = columnValues(cs.d.cons.Dataset(), cs.col)
		cs.d.applyMu.RUnlock()
	}
	if warm != nil {
		// Warm pre-application writes the column at build time, so the
		// build joins the apply side of the dataset lock (exports must
		// not read a half-pre-applied column).
		cs.d.applyMu.RLock()
	}
	sess, err := cs.d.cons.ColumnIndexWarmCtx(ctx, cs.col, warm)
	if warm != nil {
		cs.d.applyMu.RUnlock()
	}
	if err != nil {
		// Unreachable in practice: the column index was validated at
		// open time. Mark the stream done so waiters return.
		cs.mu.Lock()
		cs.exhausted = true
		cs.bumpLocked()
		cs.mu.Unlock()
		return
	}
	if n := sess.Stats().WarmGroups; n > 0 {
		if !cs.resume {
			s.metrics.bumpWarmDecisions(cs.owner, n)
		}
		logf("session %s: %d group(s) pre-decided from the library", cs.id, n)
	}
	var restored []*goldrec.Group
	if cs.resume {
		restored, err = cs.replay(ctx, s, sess)
		if err != nil {
			logf("session %s: WAL replay failed, closing session: %v", cs.id, err)
			cs.d.applyMu.Lock()
			setColumnValues(cs.d.cons.Dataset(), cs.col, pristine)
			cs.d.applyMu.Unlock()
			s.closeSession(cs)
			return
		}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return
	}
	cs.sess = sess
	cs.pending = restored
	cs.bumpLocked()
	// Phase accounting: the engine accumulates per-phase nanoseconds;
	// the service observes the deltas each NextGroup produced. The first
	// observation also carries context prep (and replay work on resume).
	lastTimings := sess.Timings()
	s.metrics.observePhases(goldrec.PhaseTimings{}, lastTimings)
	firstGroupSeen := cs.resume // resumed sessions already had groups
	if cs.resume {
		logf("session %s: restored (%d group(s) issued, %d pending)",
			cs.id, sess.Stats().GroupsSeen, len(restored))
	} else {
		logf("session %s: %d candidate replacements", cs.id, sess.Stats().Candidates)
	}
	for {
		for len(cs.pending) >= s.opts.Prefetch && !cs.closed {
			cs.cond.Wait()
		}
		if cs.closed {
			return
		}
		// NextGroup runs under cs.mu: it mutates the engine's shared
		// state, which Decide (Apply path) also touches. The buffer
		// means the reviewer still mostly hits ready groups.
		g, ok := sess.NextGroupCtx(ctx)
		now := sess.Timings()
		s.metrics.observePhases(lastTimings, now)
		lastTimings = now
		if !ok {
			cs.exhausted = true
			cs.bumpLocked()
			logf("session %s: group stream exhausted after %d group(s)", cs.id, sess.Stats().GroupsSeen)
			s.maybeCompactLocked(ctx, cs)
			return
		}
		// Log the issue before exposing the group. A crash in between
		// re-derives the same group on replay (generation is
		// deterministic); an unlogged group must never be decided, or
		// the WAL could not replay the decision.
		if err := s.store.AppendWAL(ctx, cs.datasetID, cs.id, store.WALRecord{Op: store.OpIssue, GroupID: g.ID}); err != nil {
			// Stop producing but stay registered and decidable: issued
			// groups are still reviewable, the column slot stays owned
			// (a replacement session would corrupt the durable log's
			// replay base), and a restart resumes from the WAL. The
			// stalled flag unblocks long-polling group fetches.
			cs.stalled = true
			cs.bumpLocked()
			logf("session %s: WAL append failed, group generation stalled: %v", cs.id, err)
			return
		}
		cs.pending = append(cs.pending, g)
		if !firstGroupSeen {
			firstGroupSeen = true
			s.metrics.firstGroup.ObserveSince(openedAt)
		}
		// group.ready feeds the same wakers as the long-poll path:
		// an SSE events subscriber learns a group is reviewable at the
		// moment the long-poll predicate would have released. Restored
		// groups are not re-announced (their event fired in the life
		// that issued them).
		s.emitEvent(ctx, events.Event{
			Type:    events.TypeGroupReady,
			Tenant:  cs.owner,
			Dataset: cs.datasetID,
			Session: cs.id,
			Data:    map[string]any{"group_id": g.ID, "pending": len(cs.pending)},
		})
		cs.bumpLocked()
	}
}

// replay rebuilds the session's state by re-executing its WAL: issue
// records re-derive groups through NextGroup (deterministic), decide
// records re-apply the recorded verdicts. It returns the groups that
// were issued but undecided at the time of passivation — the restored
// pending buffer. The session is not yet published, so no lock is held;
// applyMu still orders the replayed applies against exports.
func (cs *columnSession) replay(ctx context.Context, s *Service, sess *goldrec.Session) ([]*goldrec.Group, error) {
	var pending []*goldrec.Group
	err := s.store.ReplayWAL(ctx, cs.datasetID, cs.id, func(rec store.WALRecord) error {
		switch rec.Op {
		case store.OpWarm:
			// Already consumed: the engine was built from this record
			// (loadWarmRecord) before replay began, and its groups came
			// pre-decided out of the session build.
			return nil
		case store.OpIssue:
			g, ok := sess.NextGroupCtx(ctx)
			if !ok {
				return fmt.Errorf("issue record %d: group stream exhausted early", rec.GroupID)
			}
			if g.ID != rec.GroupID {
				return fmt.Errorf("issue record mismatch: regenerated group %d, log says %d", g.ID, rec.GroupID)
			}
			pending = append(pending, g)
			return nil
		case store.OpDecide:
			d, err := goldrec.ParseDecision(rec.Decision)
			if err != nil {
				return err
			}
			cs.d.applyMu.RLock()
			_, err = sess.Decide(rec.GroupID, d)
			cs.d.applyMu.RUnlock()
			if err != nil {
				return fmt.Errorf("decide record: %w", err)
			}
			for i, g := range pending {
				if g.ID == rec.GroupID {
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown WAL op %q", rec.Op)
		}
	})
	if err != nil {
		return nil, err
	}
	return pending, nil
}

// columnValues copies one column's cell values, indexed [cluster][row].
func columnValues(ds *table.Dataset, col int) [][]string {
	out := make([][]string, len(ds.Clusters))
	for ci := range ds.Clusters {
		recs := ds.Clusters[ci].Records
		vals := make([]string, len(recs))
		for ri := range recs {
			vals[ri] = recs[ri].Values[col]
		}
		out[ci] = vals
	}
	return out
}

// setColumnValues restores one column's cell values from a
// columnValues copy.
func setColumnValues(ds *table.Dataset, col int, values [][]string) {
	for ci := range ds.Clusters {
		recs := ds.Clusters[ci].Records
		for ri := range recs {
			recs[ri].Values[col] = values[ci][ri]
		}
	}
}

// lookupSession is session plus tenant visibility: a foreign session
// id reads as missing, exactly like lookupDataset — and, like it,
// resolves ownership before the touch/restore side effects.
func (s *Service) lookupSession(owner, id string) (*columnSession, error) {
	if owner != "" {
		if cs, ok := s.sessions.peek(id); ok {
			if cs.owner != owner {
				return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
			}
		} else {
			sm, err := s.store.FindSession(id)
			if errors.Is(err, store.ErrNotExist) {
				return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
			}
			if err != nil {
				return nil, fmt.Errorf("%w: looking up session %s: %v", ErrStorage, id, err)
			}
			if sm.Owner != owner {
				return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
			}
		}
	}
	cs, err := s.session(id)
	if err != nil {
		return nil, err
	}
	if owner != "" && cs.owner != owner {
		return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	return cs, nil
}

// lookupSessionInDataset is lookupSession for the dataset-scoped
// routes: the session must belong to the named dataset, and one that
// does not reads as missing — the dataset id is part of the address,
// not a hint.
func (s *Service) lookupSessionInDataset(owner, datasetID, id string) (*columnSession, error) {
	cs, err := s.lookupSession(owner, id)
	if err != nil {
		return nil, err
	}
	if cs.datasetID != datasetID {
		return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	return cs, nil
}

// getSessionInfo returns a session's info and refreshes its idle timer
// (and its dataset's).
func (s *Service) getSessionInfo(owner, id string) (SessionInfo, error) {
	cs, err := s.lookupSession(owner, id)
	if err != nil {
		return SessionInfo{}, err
	}
	return cs.info(), nil
}

// listSessions returns the owner-visible live sessions in creation
// order. An empty owner sees everything.
func (s *Service) listSessions(owner string) []SessionInfo {
	css := s.sessions.list()
	out := make([]SessionInfo, 0, len(css))
	for _, cs := range css {
		if owner != "" && cs.owner != owner {
			continue
		}
		out = append(out, cs.info())
	}
	return out
}

// ownedLiveSessions counts the live sessions owned by a tenant, shard
// by shard (no global lock) — the MaxSessions quota check.
func (s *Service) ownedLiveSessions(owner string) int {
	n := 0
	s.sessions.rangeAll(func(_ string, cs *columnSession) bool {
		if cs.owner == owner {
			n++
		}
		return true
	})
	return n
}

// deleteSession closes a session and frees its column for a new one.
// Deletion is permanent: the session's WAL and archive are purged —
// but not before its applied decisions are folded into the dataset
// snapshot, so standardization work done through a deleted session
// still survives a restart.
func (s *Service) deleteSession(ctx context.Context, owner, id string) error {
	cs, err := s.lookupSession(owner, id)
	if errors.Is(err, ErrNotFound) {
		// Not live and not restorable (the dataset is live but this
		// session is not — e.g. a prior delete purged the memory side
		// and then failed the durable purge). Purge any leftover store
		// state directly so retries converge instead of 404ing forever.
		sm, ferr := s.store.FindSession(id)
		if errors.Is(ferr, store.ErrNotExist) {
			return err
		}
		if ferr != nil {
			return fmt.Errorf("%w: looking up session %s: %v", ErrStorage, id, ferr)
		}
		if owner != "" && sm.Owner != owner {
			return err
		}
		if derr := s.store.DeleteSession(sm.DatasetID, id); derr != nil {
			return fmt.Errorf("%w: deleting session %s: %v", ErrStorage, id, derr)
		}
		s.opts.Logf("session %s: deleted (durable state only)", id)
		return nil
	}
	if err != nil {
		return err
	}
	cs.mu.Lock()
	// A resuming session must finish its replay first: deleting the WAL
	// mid-replay would strand applied changes that were never folded.
	for cs.resume && cs.sess == nil && !cs.closed && cs.archived == nil {
		cs.cond.Wait()
	}
	if cs.closed {
		cs.mu.Unlock()
		return fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	// Close first (under mu) so no decision can slip in after the fold
	// below and be lost when the WAL is deleted.
	cs.closed = true
	cs.bumpLocked()
	if cs.sess != nil && !cs.compacted && cs.sess.Stats().GroupsApplied > 0 {
		if err := s.compactLocked(ctx, cs); err != nil {
			// Without the fold, deleting the WAL would discard applied
			// work. Abort the delete; the session stays usable.
			cs.closed = false
			cs.bumpLocked()
			cs.mu.Unlock()
			return fmt.Errorf("%w: folding session %s before delete: %v", ErrStorage, id, err)
		}
	}
	cs.mu.Unlock()
	s.closeSession(cs)
	if err := s.store.DeleteSession(cs.datasetID, cs.id); err != nil {
		return fmt.Errorf("%w: deleting session %s: %v", ErrStorage, id, err)
	}
	s.opts.Logf("session %s: deleted", id)
	return nil
}

// closeSession unregisters the session, stops its generator and frees
// its column slot. Idempotent. Durable state is untouched — callers
// that mean "delete" purge the store themselves.
func (s *Service) closeSession(cs *columnSession) {
	s.sessions.remove(cs.id)
	cs.d.mu.Lock()
	if cs.d.columns[cs.col] == cs.id {
		delete(cs.d.columns, cs.col)
	}
	cs.d.mu.Unlock()
	cs.mu.Lock()
	cs.closed = true
	cs.bumpLocked()
	cs.mu.Unlock()
	s.store.CloseWAL(cs.datasetID, cs.id)
}

// session fetches a live session and touches its dataset so a dataset
// never expires under an active reviewer. A passivated session is
// transparently restored (with its whole dataset) from the store.
func (s *Service) session(id string) (*columnSession, error) {
	cs, ok := s.sessions.get(id)
	if !ok {
		sm, err := s.store.FindSession(id)
		if errors.Is(err, store.ErrNotExist) {
			return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: looking up session %s: %v", ErrStorage, id, err)
		}
		if _, _, err := s.restoreDataset(sm.DatasetID); err != nil {
			return nil, err
		}
		if cs, ok = s.sessions.get(id); !ok {
			// The dataset is live but this session did not restore
			// (e.g. its replay failed and closed it).
			return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
		}
	}
	s.datasets.touch(cs.datasetID)
	return cs, nil
}

func (cs *columnSession) info() SessionInfo {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	info := SessionInfo{
		ID:        cs.id,
		DatasetID: cs.datasetID,
		Column:    cs.column,
		Status:    cs.statusLocked(),
		Pending:   len(cs.pending),
	}
	switch {
	case cs.sess != nil:
		info.Stats = cs.sess.Stats()
		info.Timings = cs.sess.Timings()
	case cs.archived != nil:
		info.Stats = cs.archived.Stats
	}
	return info
}

func (cs *columnSession) statusLocked() string {
	switch {
	case cs.closed:
		return StatusClosed
	case cs.archived != nil:
		return StatusExhausted
	case cs.sess == nil:
		return StatusInitializing
	case cs.exhausted && len(cs.pending) == 0:
		return StatusExhausted
	case cs.stalled:
		return StatusStalled
	default:
		return StatusReviewing
	}
}

// pendingGroups returns up to limit undecided groups (0 = all buffered
// plus whatever more the generator has ready), oldest first. When wait
// is non-nil, an empty buffer blocks until a group arrives, the stream
// ends, or wait is canceled.
func (s *Service) pendingGroups(owner, id string, limit int, wait <-chan struct{}) (GroupPage, error) {
	cs, err := s.lookupSession(owner, id)
	if err != nil {
		return GroupPage{}, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if wait != nil {
		for len(cs.pending) == 0 && !cs.exhausted && !cs.stalled && !cs.closed && !chanClosed(wait) {
			cs.waitOrCancel(wait)
		}
	}
	if cs.closed {
		return GroupPage{}, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	return cs.pageLocked(limit), nil
}

// pageLocked renders the current undecided-group page. Caller holds
// cs.mu.
func (cs *columnSession) pageLocked(limit int) GroupPage {
	page := GroupPage{Status: cs.statusLocked(), Pending: len(cs.pending)}
	n := len(cs.pending)
	if limit > 0 && limit < n {
		n = limit
	}
	if cs.sess != nil {
		page.ApproveRate = cs.sess.ApproveRate()
	}
	page.Groups = make([]goldrec.GroupState, 0, n)
	for _, g := range cs.pending[:n] {
		// Buffered groups are undecided by invariant, so their gain is
		// sites × the page's approve rate.
		sites := g.RemainingSites()
		page.Groups = append(page.Groups, goldrec.GroupState{
			ID:        g.ID,
			Program:   g.Program,
			Structure: g.Structure,
			Pairs:     append([]goldrec.Replacement(nil), g.Pairs...),
			Decision:  g.Decision(),
			Sites:     sites,
			Gain:      float64(sites) * page.ApproveRate,
		})
	}
	return page
}

// waitGroupsPage blocks until the session's observable state moves past
// afterRev (or wait closes), then renders a page at the new rev. Pass
// afterRev = ^uint64(0) for an immediate first page. The SSE groups
// stream is its only caller: each round sends one page, remembers the
// rev it rendered, and asks again.
func (s *Service) waitGroupsPage(owner, id string, limit int, afterRev uint64, wait <-chan struct{}) (GroupPage, uint64, error) {
	cs, err := s.lookupSession(owner, id)
	if err != nil {
		return GroupPage{}, 0, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for cs.rev == afterRev && !cs.closed && !chanClosed(wait) {
		cs.waitOrCancel(wait)
	}
	if cs.closed {
		return GroupPage{}, 0, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	return cs.pageLocked(limit), cs.rev, nil
}

// bumpLocked marks an observable state change (pending buffer, status)
// and wakes every waiter. Caller holds cs.mu. Pure wake-ups that change
// nothing (waitOrCancel's cancel watcher) call cond.Broadcast directly
// and must NOT bump rev, or idle SSE streams would re-send unchanged
// pages.
func (cs *columnSession) bumpLocked() {
	cs.rev++
	cs.cond.Broadcast()
}

// waitOrCancel waits on cond but also wakes when cancel closes. The
// watcher goroutine re-broadcasts so every waiter rechecks its
// predicate (including chanClosed(cancel)).
func (cs *columnSession) waitOrCancel(cancel <-chan struct{}) {
	done := make(chan struct{})
	go func() {
		select {
		case <-cancel:
			cs.mu.Lock()
			cs.cond.Broadcast()
			cs.mu.Unlock()
		case <-done:
		}
	}()
	cs.cond.Wait()
	close(done)
}

func chanClosed(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// decide records the reviewer's verdict for one issued group and, for
// approvals, applies the replacements. Distinct-column sessions of the
// same dataset can apply concurrently; exports serialize against them.
//
// The decision is appended to the session's WAL after validation but
// before it is applied or acknowledged: once the reviewer sees success,
// the verdict survives any crash. A storage failure rejects the request
// with nothing recorded and nothing applied.
//
// A tenant-scoped caller spends one token of its decisions/sec budget
// per attempt; an empty bucket rejects with RateLimitError before any
// work is done (unscoped callers are never rate limited).
func (s *Service) decide(ctx context.Context, owner, id string, groupID int, decision goldrec.Decision) (DecisionResult, error) {
	switch decision {
	case goldrec.Approved, goldrec.ApprovedBackward, goldrec.Rejected:
	default:
		return DecisionResult{}, fmt.Errorf("invalid decision %d", int(decision))
	}
	cs, err := s.lookupSession(owner, id)
	if err != nil {
		return DecisionResult{}, err
	}
	if owner != "" && s.opts.Tenants != nil {
		if ok, retry := s.opts.Tenants.AllowDecision(owner); !ok {
			s.metrics.bumpRateLimited(owner)
			return DecisionResult{}, &RateLimitError{RetryAfter: retry}
		}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return DecisionResult{}, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	if cs.archived != nil {
		return DecisionResult{}, fmt.Errorf("session %s is finished and compacted: %w", id, ErrConflict)
	}
	if cs.sess == nil {
		return DecisionResult{}, fmt.Errorf("session %s is still initializing: %w", id, ErrConflict)
	}
	// Validate here (rather than letting sess.Decide fail) so only
	// decisions that will succeed reach the WAL — replay must never hit
	// a failing record.
	g, ok := cs.sess.Group(groupID)
	if !ok {
		return DecisionResult{}, fmt.Errorf("%w: no issued group %d", ErrConflict, groupID)
	}
	if g.Decision() != goldrec.Pending {
		return DecisionResult{}, fmt.Errorf("%w: group %d already decided (%s)", ErrConflict, groupID, g.Decision())
	}
	// Undecided groups must also be in the pending buffer: a group
	// enters it exactly when its issue record lands in the WAL. A group
	// the generator pulled but failed to log (stall window) is issued in
	// the engine yet absent here — deciding it would write a decide
	// record replay can never satisfy.
	inPending := false
	for _, p := range cs.pending {
		if p.ID == groupID {
			inPending = true
			break
		}
	}
	if !inPending {
		return DecisionResult{}, fmt.Errorf("%w: group %d is not awaiting a decision", ErrConflict, groupID)
	}
	rec := store.WALRecord{Op: store.OpDecide, GroupID: groupID, Decision: decision.String()}
	if err := s.store.AppendWAL(ctx, cs.datasetID, cs.id, rec); err != nil {
		return DecisionResult{}, fmt.Errorf("%w: logging decision: %v", ErrStorage, err)
	}
	cs.d.applyMu.RLock()
	stats, err := cs.sess.Decide(groupID, decision)
	cs.d.applyMu.RUnlock()
	if err != nil {
		// Unreachable given the validation above; the WAL now holds a
		// record the session does not. Surface loudly.
		return DecisionResult{}, fmt.Errorf("%w: decision logged but not applied: %v", ErrStorage, err)
	}
	for i, g := range cs.pending {
		if g.ID == groupID {
			cs.pending = append(cs.pending[:i], cs.pending[i+1:]...)
			break
		}
	}
	// A freed buffer slot lets the generator pull the next group while
	// the reviewer reads the response.
	cs.bumpLocked()
	res := DecisionResult{
		GroupID:  groupID,
		Decision: decision,
		Applied:  stats,
		Stats:    cs.sess.Stats(),
	}
	// Acknowledged decisions are metered against the session's owner
	// (the tenant whose review budget is being spent), so an admin
	// reviewing on a tenant's behalf still shows up on that tenant.
	s.metrics.bumpDecisions(cs.owner)
	s.emitEvent(ctx, events.Event{
		Type:    events.TypeDecisionRecorded,
		Tenant:  cs.owner,
		Dataset: cs.datasetID,
		Session: cs.id,
		Data:    map[string]any{"group_id": groupID, "decision": decision.String()},
	})
	// The verdict also teaches the owner's transformation library, so
	// the tenant's next upload can pre-decide groups this program
	// explains. Attributed to the owner for the same reason as above.
	s.recordVerdict(ctx, cs, groupID, decision)
	s.maybeCompactLocked(ctx, cs)
	return res, nil
}

// maxBatchDecisions bounds one batched submission. The cap keeps a
// batch's WAL payload and validation work small, and stays below any
// sane decisions/sec burst so rate-limited tenants can still get a
// full batch admitted (AllowDecisions is all-or-nothing).
const maxBatchDecisions = 256

// decideBatch records many verdicts for one session atomically:
// validate the whole batch first (ApplyReview-style — a duplicate
// group id, unknown or already-decided group, or invalid decision
// rejects everything before any apply), append every decide record in
// one WAL batch (one write, one fsync), then apply in request order.
// Tenant-scoped callers spend len(reqs) rate-limit tokens up front,
// all or nothing.
func (s *Service) decideBatch(ctx context.Context, owner, datasetID, id string, reqs []DecisionRequest) (BatchDecisionsResult, error) {
	if len(reqs) == 0 {
		return BatchDecisionsResult{}, fmt.Errorf("empty batch: at least one decision required")
	}
	if len(reqs) > maxBatchDecisions {
		return BatchDecisionsResult{}, fmt.Errorf("batch of %d decisions exceeds the limit of %d", len(reqs), maxBatchDecisions)
	}
	// Parse and dedupe before touching the session: malformed input
	// should never cost a lock, a rate-limit token or a WAL write.
	decisions := make([]goldrec.Decision, len(reqs))
	seen := make(map[int]int, len(reqs))
	for i, req := range reqs {
		d, err := goldrec.ParseDecision(req.Decision)
		if err != nil {
			return BatchDecisionsResult{}, fmt.Errorf("decision %d (group %d): %w", i, req.GroupID, err)
		}
		if d == goldrec.Pending {
			return BatchDecisionsResult{}, fmt.Errorf("decision %d (group %d): decision must be approve, approve-backward or reject", i, req.GroupID)
		}
		if j, dup := seen[req.GroupID]; dup {
			return BatchDecisionsResult{}, fmt.Errorf("%w: group %d appears twice in the batch (decisions %d and %d)", ErrConflict, req.GroupID, j, i)
		}
		seen[req.GroupID] = i
		decisions[i] = d
	}
	cs, err := s.lookupSessionInDataset(owner, datasetID, id)
	if err != nil {
		return BatchDecisionsResult{}, err
	}
	if owner != "" && s.opts.Tenants != nil {
		if ok, retry := s.opts.Tenants.AllowDecisions(owner, len(reqs)); !ok {
			s.metrics.bumpRateLimited(owner)
			return BatchDecisionsResult{}, &RateLimitError{RetryAfter: retry}
		}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return BatchDecisionsResult{}, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	if cs.archived != nil {
		return BatchDecisionsResult{}, fmt.Errorf("session %s is finished and compacted: %w", id, ErrConflict)
	}
	if cs.sess == nil {
		return BatchDecisionsResult{}, fmt.Errorf("session %s is still initializing: %w", id, ErrConflict)
	}
	// Same per-group validation as decide, across the whole batch
	// before any WAL write: replay must never hit a failing record,
	// and a reviewer must never get half a submission applied.
	inPending := make(map[int]bool, len(cs.pending))
	for _, p := range cs.pending {
		inPending[p.ID] = true
	}
	recs := make([]store.WALRecord, len(reqs))
	for i, req := range reqs {
		g, ok := cs.sess.Group(req.GroupID)
		if !ok {
			return BatchDecisionsResult{}, fmt.Errorf("%w: no issued group %d (decision %d)", ErrConflict, req.GroupID, i)
		}
		if g.Decision() != goldrec.Pending {
			return BatchDecisionsResult{}, fmt.Errorf("%w: group %d already decided (%s)", ErrConflict, req.GroupID, g.Decision())
		}
		if !inPending[req.GroupID] {
			return BatchDecisionsResult{}, fmt.Errorf("%w: group %d is not awaiting a decision", ErrConflict, req.GroupID)
		}
		recs[i] = store.WALRecord{Op: store.OpDecide, GroupID: req.GroupID, Decision: decisions[i].String()}
	}
	if err := s.store.BatchAppendWAL(ctx, cs.datasetID, cs.id, recs); err != nil {
		return BatchDecisionsResult{}, fmt.Errorf("%w: logging decisions: %v", ErrStorage, err)
	}
	results := make([]DecisionResult, 0, len(reqs))
	cs.d.applyMu.RLock()
	for i, req := range reqs {
		stats, err := cs.sess.Decide(req.GroupID, decisions[i])
		if err != nil {
			cs.d.applyMu.RUnlock()
			// Unreachable given the validation above (as in decide): the
			// WAL now holds records the session does not. Surface loudly.
			return BatchDecisionsResult{}, fmt.Errorf("%w: decision on group %d logged but not applied: %v", ErrStorage, req.GroupID, err)
		}
		results = append(results, DecisionResult{
			GroupID:  req.GroupID,
			Decision: decisions[i],
			Applied:  stats,
			Stats:    cs.sess.Stats(),
		})
	}
	cs.d.applyMu.RUnlock()
	decided := make(map[int]bool, len(reqs))
	for _, req := range reqs {
		decided[req.GroupID] = true
	}
	kept := cs.pending[:0]
	for _, g := range cs.pending {
		if !decided[g.ID] {
			kept = append(kept, g)
		}
	}
	cs.pending = kept
	// Freed buffer slots let the generator pull more groups, and
	// long-polling group fetches re-check their predicate.
	cs.bumpLocked()
	res := BatchDecisionsResult{
		Results:     results,
		Status:      cs.statusLocked(),
		Pending:     len(cs.pending),
		ApproveRate: cs.sess.ApproveRate(),
		Stats:       cs.sess.Stats(),
	}
	for _, g := range cs.pending {
		res.RemainingGain += float64(g.RemainingSites()) * res.ApproveRate
	}
	s.metrics.bumpDecisionsN(cs.owner, len(reqs))
	for i, req := range reqs {
		s.emitEvent(ctx, events.Event{
			Type:    events.TypeDecisionRecorded,
			Tenant:  cs.owner,
			Dataset: cs.datasetID,
			Session: cs.id,
			Data:    map[string]any{"group_id": req.GroupID, "decision": decisions[i].String()},
		})
	}
	s.emitEvent(ctx, events.Event{
		Type:    events.TypeBatchApplied,
		Tenant:  cs.owner,
		Dataset: cs.datasetID,
		Session: cs.id,
		Data:    map[string]any{"decisions": len(reqs)},
	})
	// Teach the owner's transformation library every verdict in the
	// batch, exactly as the single-decision path does.
	for i, req := range reqs {
		s.recordVerdict(ctx, cs, req.GroupID, decisions[i])
	}
	s.maybeCompactLocked(ctx, cs)
	return res, nil
}

// pendingGroupsInDataset is pendingGroups addressed through the
// dataset-scoped route; the session must belong to the dataset.
func (s *Service) pendingGroupsInDataset(owner, datasetID, id string, limit int, wait <-chan struct{}) (GroupPage, error) {
	if _, err := s.lookupSessionInDataset(owner, datasetID, id); err != nil {
		return GroupPage{}, err
	}
	return s.pendingGroups(owner, id, limit, wait)
}

// maybeCompactLocked folds a finished session (stream exhausted, every
// issued group decided) into the dataset snapshot. Compaction failure
// only costs disk space: the WAL stays and recovery replays it. Caller
// holds cs.mu.
func (s *Service) maybeCompactLocked(ctx context.Context, cs *columnSession) {
	if cs.compacted || cs.archived != nil || cs.sess == nil ||
		!cs.exhausted || len(cs.pending) != 0 || cs.sess.Stats().GroupsSeen == 0 {
		return
	}
	if err := s.compactLocked(ctx, cs); err != nil {
		s.opts.Logf("session %s: compaction failed (WAL retained): %v", cs.id, err)
	}
}

// compactLocked archives the session's ReviewState and folds its
// column into a new snapshot version. Caller holds cs.mu.
func (s *Service) compactLocked(ctx context.Context, cs *columnSession) error {
	state, err := json.Marshal(cs.sess.ReviewState())
	if err != nil {
		return err
	}
	cs.d.applyMu.RLock()
	values := columnValues(cs.d.cons.Dataset(), cs.col)
	cs.d.applyMu.RUnlock()
	if err := s.store.CompactSession(cs.datasetID, cs.id, cs.col, values, state); err != nil {
		return err
	}
	cs.compacted = true
	s.opts.Logf("session %s: compacted (%d decision(s) folded into dataset %s snapshot)",
		cs.id, cs.sess.Stats().GroupsSeen, cs.datasetID)
	s.emitEvent(ctx, events.Event{
		Type:    events.TypeSessionCompacted,
		Tenant:  cs.owner,
		Dataset: cs.datasetID,
		Session: cs.id,
		Data:    map[string]any{"decisions": cs.sess.Stats().GroupsSeen},
	})
	return nil
}

// reviewState snapshots a session's full review progress. For a
// compacted session restored from the store, the archived final state
// is served instead.
func (s *Service) reviewState(owner, id string) (goldrec.ReviewState, error) {
	cs, err := s.lookupSession(owner, id)
	if err != nil {
		return goldrec.ReviewState{}, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.archived != nil {
		return *cs.archived, nil
	}
	if cs.sess == nil {
		ds := cs.d.cons.Dataset()
		return goldrec.ReviewState{Dataset: ds.Name, Column: cs.column}, nil
	}
	return cs.sess.ReviewState(), nil
}

// export renders the dataset's records. Golden exports run truth
// discovery over the standardized dataset (Algorithm 1 line 10);
// standardized exports dump the current cell values. Both hold the
// dataset's write lock so no session applies mid-read.
func (s *Service) export(ctx context.Context, owner, datasetID string, golden bool) (ExportData, error) {
	d, err := s.lookupDataset(owner, datasetID)
	if err != nil {
		return ExportData{}, err
	}
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	ds := d.cons.Dataset()
	out := ExportData{KeyCol: d.keyCol, Attrs: append([]string(nil), ds.Attrs...)}
	if golden {
		for ci, rec := range d.cons.GoldenRecords() {
			out.Records = append(out.Records, ExportRecord{
				Key:    ds.Clusters[ci].Key,
				Values: append([]string(nil), rec.Values...),
			})
		}
	} else {
		for ci := range ds.Clusters {
			for _, rec := range ds.Clusters[ci].Records {
				out.Records = append(out.Records, ExportRecord{
					Key:    ds.Clusters[ci].Key,
					Values: append([]string(nil), rec.Values...),
				})
			}
		}
	}
	s.emitEvent(ctx, events.Event{
		Type:    events.TypeExportCreated,
		Tenant:  d.owner,
		Dataset: datasetID,
		Data:    map[string]any{"golden": golden, "records": len(out.Records)},
	})
	return out, nil
}

func (s *Service) alive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}
