// Package core implements the unsupervised grouping algorithms of the
// paper: the inverted index over transformation-graph edge labels with
// adjacency-aware list intersection (Section 5.1), the pivot-path search
// with local and global threshold early termination (Algorithms 3-4), the
// one-shot UnsupervisedGrouping (Algorithm 2) and the incremental top-k
// grouping (Section 6, Algorithms 5-7), including the structure-group
// refinement of Section 7.2.
package core

import (
	"sort"

	"github.com/goldrec/goldrec/internal/tgraph"
)

// Posting is one inverted-list entry ⟨G, i, j⟩: the edge from node i to
// node j of graph G carries the list's label (Section 5.1).
type Posting struct {
	G    int32
	I, J int16
}

// Index is the inverted index from edge labels to postings, built once
// per grouping context (structure group).
type Index struct {
	lists map[tgraph.LabelID][]Posting
	// graphCount[f] is the number of distinct graphs with at least one
	// posting for f, the |I[f]| of Lemma 6.2's upper bounds.
	graphCount map[tgraph.LabelID]int
}

// BuildIndex indexes every edge label of every graph. Graph IDs must
// equal their slice positions.
func BuildIndex(graphs []*tgraph.Graph) *Index {
	ix := &Index{
		lists:      make(map[tgraph.LabelID][]Posting),
		graphCount: make(map[tgraph.LabelID]int),
	}
	for _, g := range graphs {
		if g == nil {
			continue
		}
		for i := 1; i < len(g.Adj); i++ {
			for _, e := range g.Adj[i] {
				for _, f := range e.Labels {
					ix.lists[f] = append(ix.lists[f], Posting{G: int32(g.ID), I: int16(i), J: int16(e.To)})
				}
			}
		}
	}
	// Graphs are visited in ID order and edges in (i,j) order, so each
	// list is already sorted by (G, I, J). Count distinct graphs.
	for f, list := range ix.lists {
		ix.graphCount[f] = distinctGraphs(list)
	}
	return ix
}

// List returns the postings of a label (nil when absent).
func (ix *Index) List(f tgraph.LabelID) []Posting { return ix.lists[f] }

// GraphCount returns the number of distinct graphs containing label f.
func (ix *Index) GraphCount(f tgraph.LabelID) int { return ix.graphCount[f] }

// NumLabels returns the number of distinct labels indexed.
func (ix *Index) NumLabels() int { return len(ix.lists) }

// intersect computes the adjacency-aware intersection of Section 5.1: an
// entry ⟨G,i1,j1⟩ of l and ⟨G,i2,j2⟩ of list join into ⟨G,i1,j2⟩ iff
// j1 = i2. Postings of graphs for which alive[G] is false are dropped.
// Both inputs must be sorted by (G,I,J); the output is too.
func intersect(l, list []Posting, alive []bool) []Posting {
	var out []Posting
	a, b := 0, 0
	for a < len(l) && b < len(list) {
		switch {
		case l[a].G < list[b].G:
			a++
		case l[a].G > list[b].G:
			b++
		default:
			g := l[a].G
			ae := a
			for ae < len(l) && l[ae].G == g {
				ae++
			}
			be := b
			for be < len(list) && list[be].G == g {
				be++
			}
			if alive == nil || alive[g] {
				start := len(out)
				for x := a; x < ae; x++ {
					for y := b; y < be; y++ {
						if l[x].J == list[y].I {
							out = append(out, Posting{G: g, I: l[x].I, J: list[y].J})
						}
					}
				}
				out = sortDedupBlock(out, start)
			}
			a, b = ae, be
		}
	}
	return out
}

// sortDedupBlock sorts out[start:] by (I,J) and removes duplicates,
// keeping the overall (G,I,J) order intact. Blocks are tiny in practice.
func sortDedupBlock(out []Posting, start int) []Posting {
	block := out[start:]
	if len(block) <= 1 {
		return out
	}
	sort.Slice(block, func(p, q int) bool {
		if block[p].I != block[q].I {
			return block[p].I < block[q].I
		}
		return block[p].J < block[q].J
	})
	w := start + 1
	for x := start + 1; x < len(out); x++ {
		if out[x] != out[w-1] {
			out[w] = out[x]
			w++
		}
	}
	return out[:w]
}

// distinctGraphs counts the distinct graphs in a sorted posting list.
func distinctGraphs(l []Posting) int {
	n := 0
	var prev int32 = -1
	for _, p := range l {
		if p.G != prev {
			n++
			prev = p.G
		}
	}
	return n
}

// spanningGraphs returns the distinct graphs with a posting reaching that
// graph's final node — the graphs that *contain* the completed path as a
// transformation path (the support set used for grouping). The input
// must be sorted by (G,I,J).
func spanningGraphs(l []Posting, graphs []*tgraph.Graph) []int32 {
	var out []int32
	i := 0
	for i < len(l) {
		g := l[i].G
		spans := false
		for i < len(l) && l[i].G == g {
			if int(l[i].J) == graphs[g].FinalNode() {
				spans = true
			}
			i++
		}
		if spans {
			out = append(out, g)
		}
	}
	return out
}
