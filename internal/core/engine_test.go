package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/goldrec/goldrec/internal/tgraph"
)

// table1NameReps generates the 12 candidate replacements of Figure 2
// (every ordered pair of distinct Name values within the two clusters of
// Table 1).
func table1NameReps() []Rep {
	clusters := [][]string{
		{"Mary Lee", "M. Lee", "Lee, Mary"},
		{"Smith, James", "James Smith", "J. Smith"},
	}
	var reps []Rep
	ext := 0
	for _, cl := range clusters {
		for i := range cl {
			for j := range cl {
				if i == j {
					continue
				}
				reps = append(reps, Rep{S: cl[i], T: cl[j], Ext: ext})
				ext++
			}
		}
	}
	return reps
}

func groupSizes(groups []*Group) []int {
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = g.Size()
	}
	return out
}

func TestAllGroupsFigure2(t *testing.T) {
	// The 12 Name replacements of Table 1 form 4 groups of size 2 (the
	// transformations shared across the two clusters: transpose,
	// initial-from-comma-form, initial-from-plain-form, plain-form to
	// comma-form) plus 4 singletons (the reverse directions that need
	// cluster-specific constants). The naive OneShot mode enumerates
	// every path (exponential — the very problem Section 5.2 fixes), so
	// only the early-termination mode runs on the full-length strings.
	for _, mode := range []Mode{ModeEarlyTerm} {
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			e := NewEngine(table1NameReps(), Options{})
			groups := e.AllGroups(mode)
			sizes := groupSizes(groups)
			want := []int{2, 2, 2, 2, 1, 1, 1, 1}
			if len(sizes) != len(want) {
				t.Fatalf("group sizes = %v, want %v", sizes, want)
			}
			for i := range want {
				if sizes[i] != want[i] {
					t.Fatalf("group sizes = %v, want %v", sizes, want)
				}
			}
			// Every replacement appears in exactly one group.
			seen := make(map[int]bool)
			for _, g := range groups {
				for _, m := range g.Members {
					if seen[m.Ext] {
						t.Fatalf("replacement %d in two groups", m.Ext)
					}
					seen[m.Ext] = true
				}
			}
			if len(seen) != 12 {
				t.Fatalf("grouped %d replacements, want 12", len(seen))
			}
			// Each size-2 group's program must be consistent with both
			// members.
			for _, g := range groups[:4] {
				for _, m := range g.Members {
					if !g.Program.Consistent(m.S, m.T) {
						t.Errorf("group program %v inconsistent with %q→%q", g.Program, m.S, m.T)
					}
				}
			}
		})
	}
}

func TestIncrementalMatchesOneShotSizes(t *testing.T) {
	// Theorem 6.4: GenerateNextLargestGroup returns the groups of
	// UnsupervisedGrouping in size order. EarlyTerm produces the same
	// groups as OneShot (verified on short strings by
	// TestModesAgreeOnRandomPools) and is tractable on these lengths.
	reps := table1NameReps()
	oneshot := NewEngine(reps, Options{})
	wantSizes := groupSizes(oneshot.AllGroups(ModeEarlyTerm))

	inc := NewEngine(reps, Options{})
	var gotSizes []int
	seen := make(map[int]bool)
	for {
		g := inc.NextGroup()
		if g == nil {
			break
		}
		gotSizes = append(gotSizes, g.Size())
		for _, m := range g.Members {
			if seen[m.Ext] {
				t.Fatalf("incremental returned replacement %d twice", m.Ext)
			}
			seen[m.Ext] = true
		}
	}
	if len(gotSizes) != len(wantSizes) {
		t.Fatalf("incremental sizes %v, oneshot sizes %v", gotSizes, wantSizes)
	}
	for i := range wantSizes {
		if gotSizes[i] != wantSizes[i] {
			t.Fatalf("incremental sizes %v, oneshot sizes %v", gotSizes, wantSizes)
		}
	}
	if len(seen) != len(reps) {
		t.Fatalf("incremental covered %d replacements, want %d", len(seen), len(reps))
	}
}

func TestIncrementalExample61(t *testing.T) {
	// Example 6.1 on the Example 5.1 pool: the first group is {G1,G2};
	// the incremental engine prepares and visits by upper bound and
	// stops after searching G1 (G2's bound 2 is not above τ=2).
	c := newContext("sig", []Rep{
		{S: "Lee, Mary", T: "M. Lee", Ext: 0},
		{S: "Smith, James", T: "J. Smith", Ext: 1},
		{S: "Lee, Mary", T: "Mary Lee", Ext: 2},
	})
	e := &Engine{opts: Options{}, ctxs: []*Context{c}, loc: map[int]struct {
		ctx *Context
		idx int
	}{}}
	for i, r := range c.Reps {
		e.loc[r.Ext] = struct {
			ctx *Context
			idx int
		}{c, i}
	}
	e.units = &unitHeap{}
	e.units.Push(unit{ctx: 0, gi: -1, up: 3})

	g1 := e.NextGroup()
	if g1 == nil || g1.Size() != 2 {
		t.Fatalf("first group = %+v, want size 2", g1)
	}
	exts := map[int]bool{}
	for _, m := range g1.Members {
		exts[m.Ext] = true
	}
	if !exts[0] || !exts[1] {
		t.Errorf("first group members = %v, want φ1 and φ2", g1.Members)
	}
	g2 := e.NextGroup()
	if g2 == nil || g2.Size() != 1 || g2.Members[0].Ext != 2 {
		t.Fatalf("second group = %+v, want singleton φ3", g2)
	}
	if g := e.NextGroup(); g != nil {
		t.Fatalf("third group = %+v, want nil", g)
	}
}

func TestEngineRemove(t *testing.T) {
	// Removing one member of the best pair before grouping shrinks the
	// group sizes accordingly.
	reps := table1NameReps()
	e := NewEngine(reps, Options{})
	// Remove all Smith-cluster replacements: every group becomes a
	// singleton of the Lee cluster.
	for _, r := range reps {
		if r.Ext >= 6 {
			e.Remove(r.Ext)
		}
	}
	groups := e.AllGroups(ModeEarlyTerm)
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6", len(groups))
	}
	for _, g := range groups {
		if g.Size() != 1 {
			t.Errorf("group size = %d, want 1", g.Size())
		}
	}
}

func TestIncrementalRemoveMidStream(t *testing.T) {
	// A removal between NextGroup calls invalidates stale lower bounds
	// (witness re-validation); the engine must not return dead members.
	reps := table1NameReps()
	e := NewEngine(reps, Options{})
	g1 := e.NextGroup()
	if g1 == nil || g1.Size() != 2 {
		t.Fatalf("first group = %+v", g1)
	}
	// Kill one side of the Smith cluster to shrink future groups.
	for _, r := range reps {
		if r.Ext >= 6 {
			e.Remove(r.Ext)
		}
	}
	seen := make(map[int]bool)
	for _, m := range g1.Members {
		seen[m.Ext] = true
	}
	for {
		g := e.NextGroup()
		if g == nil {
			break
		}
		for _, m := range g.Members {
			if m.Ext >= 6 && !seen[m.Ext] {
				t.Fatalf("group contains removed replacement %d", m.Ext)
			}
			if seen[m.Ext] {
				t.Fatalf("replacement %d returned twice", m.Ext)
			}
			seen[m.Ext] = true
		}
	}
}

func TestEngineParallelMatchesSequential(t *testing.T) {
	reps := table1NameReps()
	seq := NewEngine(reps, Options{})
	par := NewEngine(reps, Options{Parallel: true})
	sg := seq.AllGroups(ModeEarlyTerm)
	pg := par.AllGroups(ModeEarlyTerm)
	if len(sg) != len(pg) {
		t.Fatalf("parallel groups %d, sequential %d", len(pg), len(sg))
	}
	for i := range sg {
		if sg[i].Size() != pg[i].Size() || sg[i].Sig != pg[i].Sig {
			t.Fatalf("group %d differs: %v vs %v", i, sg[i], pg[i])
		}
	}
}

// randomReps builds replacement pools with planted shared
// transformations for the equivalence property test. Names are kept
// short so that even the prune-free OneShot mode finishes instantly.
func randomReps(rng *rand.Rand, n int) []Rep {
	firsts := []string{"Al", "Bo", "Cy", "Di"}
	lasts := []string{"Wu", "Ng", "Ko"}
	var reps []Rep
	for i := 0; i < n; i++ {
		f := firsts[rng.Intn(len(firsts))]
		l := lasts[rng.Intn(len(lasts))]
		switch rng.Intn(3) {
		case 0: // transpose
			reps = append(reps, Rep{S: l + ", " + f, T: f + " " + l, Ext: i})
		case 1: // initial
			reps = append(reps, Rep{S: l + ", " + f, T: f[:1] + ". " + l, Ext: i})
		default: // identity-ish formatting
			reps = append(reps, Rep{S: f + " " + l, T: l + ", " + f, Ext: i})
		}
	}
	return reps
}

func TestModesAgreeOnRandomPools(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		reps := randomReps(rng, 20+rng.Intn(20))
		one := groupSizes(NewEngine(reps, Options{}).AllGroups(ModeOneShot))
		early := groupSizes(NewEngine(reps, Options{}).AllGroups(ModeEarlyTerm))
		if len(one) != len(early) {
			t.Fatalf("trial %d: oneshot %v earlyterm %v", trial, one, early)
		}
		for i := range one {
			if one[i] != early[i] {
				t.Fatalf("trial %d: oneshot %v earlyterm %v", trial, one, early)
			}
		}
		inc := NewEngine(reps, Options{})
		var incSizes []int
		total := 0
		for {
			g := inc.NextGroup()
			if g == nil {
				break
			}
			incSizes = append(incSizes, g.Size())
			total += g.Size()
		}
		// The incremental engine must cover every replacement and
		// produce non-increasing sizes that match the one-shot
		// multiset.
		if total != len(reps) {
			t.Fatalf("trial %d: incremental covered %d of %d", trial, total, len(reps))
		}
		for i := 1; i < len(incSizes); i++ {
			if incSizes[i] > incSizes[i-1] {
				t.Fatalf("trial %d: sizes not non-increasing: %v", trial, incSizes)
			}
		}
		if len(incSizes) != len(one) {
			t.Fatalf("trial %d: incremental %v oneshot %v", trial, incSizes, one)
		}
		for i := range one {
			if incSizes[i] != one[i] {
				t.Fatalf("trial %d: incremental %v oneshot %v", trial, incSizes, one)
			}
		}
	}
}

func TestEngineConstantScoring(t *testing.T) {
	// Constant scoring keeps grouping working on the canonical pool
	// (the ". " constant is a within-group frequent substring).
	reps := table1NameReps()
	e := NewEngine(reps, Options{ConstantScoring: true})
	groups := e.AllGroups(ModeEarlyTerm)
	if len(groups) == 0 || groups[0].Size() != 2 {
		t.Fatalf("constant-scored groups = %v", groupSizes(groups))
	}
}

func TestEngineSkippedReps(t *testing.T) {
	reps := []Rep{
		{S: "", T: "x", Ext: 0},
		{S: "ab", T: "ba", Ext: 1},
	}
	e := NewEngine(reps, Options{})
	_ = e.AllGroups(ModeEarlyTerm)
	if e.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", e.Skipped())
	}
}

func TestNextGroupExhaustsAndReturnsNil(t *testing.T) {
	e := NewEngine([]Rep{{S: "a", T: "b", Ext: 0}}, Options{})
	if g := e.NextGroup(); g == nil || g.Size() != 1 {
		t.Fatalf("first group = %+v", g)
	}
	if g := e.NextGroup(); g != nil {
		t.Fatalf("second group = %+v, want nil", g)
	}
	if g := e.NextGroup(); g != nil {
		t.Fatalf("third group = %+v, want nil", g)
	}
}

func TestGroupProgramMaterialization(t *testing.T) {
	e := NewEngine(table1NameReps(), Options{})
	groups := e.AllGroups(ModeEarlyTerm)
	for _, g := range groups {
		if g.Program == nil {
			t.Fatalf("group %v has no program", g.Members)
		}
		if len(g.Path) != len(g.Program) {
			t.Fatalf("path/program length mismatch")
		}
	}
}

var _ = tgraph.Options{} // keep import when tests shrink
