package core

import (
	"math"

	"github.com/goldrec/goldrec/internal/dsl"
	"github.com/goldrec/goldrec/internal/structure"
	"github.com/goldrec/goldrec/internal/tgraph"
)

// Rep is a candidate replacement handed to the grouping engine: the two
// strings plus an opaque external identifier the caller uses to map
// groups back to its own candidate store.
type Rep struct {
	S, T string
	Ext  int
}

// Context is the grouping state of one structure group (Section 7.2):
// the graphs of its replacements, their shared label registry and
// inverted index, and the per-graph bounds of the incremental algorithm.
type Context struct {
	Sig  string
	Reps []Rep

	prepared bool
	Reg      *tgraph.Registry
	Graphs   []*tgraph.Graph // Graphs[i] may be nil (unbuildable rep)
	Index    *Index

	alive    []bool
	aliveN   int
	seeds    []Posting // ⟨G,1,1⟩ for every alive graph
	seedsGen int64     // removal generation the seeds were built at

	lo         []int // global lower bounds Glo (Algorithm 4 / Section 6)
	up         []int // upper bounds Gup (Lemma 6.2)
	witness    [][]tgraph.LabelID
	witnessGen []int64
	gen        int64 // bumped on every removal

	// preDead collects removals that arrive before Prepare; Prepare
	// skips them.
	preDead map[int]bool
}

// newContext builds an unprepared context; Prepare is called lazily
// (Section 7.2: the structure-group size serves as the initial upper
// bound until the group is first visited).
func newContext(sig string, reps []Rep) *Context {
	return &Context{Sig: sig, Reps: reps}
}

// Prepared reports whether graphs and index have been built.
func (c *Context) Prepared() bool { return c.prepared }

// AliveCount returns the number of alive (not yet grouped/removed)
// replacements.
func (c *Context) AliveCount() int {
	if !c.prepared {
		return len(c.Reps) - len(c.preDead)
	}
	return c.aliveN
}

// Prepare is Algorithm 6 for one structure group: it builds the graphs,
// the inverted index, and initializes lower bounds to 1 and upper bounds
// per Lemma 6.2. Replacements whose graphs cannot be built (empty or
// overlong strings) are marked dead.
func (c *Context) Prepare(opt tgraph.Options) {
	if c.prepared {
		return
	}
	c.prepared = true
	n := len(c.Reps)
	c.Reg = tgraph.NewRegistry()
	c.Graphs = make([]*tgraph.Graph, n)
	c.alive = make([]bool, n)
	c.lo = make([]int, n)
	c.up = make([]int, n)
	c.witness = make([][]tgraph.LabelID, n)
	c.witnessGen = make([]int64, n)
	for i, r := range c.Reps {
		if c.preDead[i] {
			continue
		}
		g := tgraph.Build(r.S, r.T, c.Reg, opt)
		if g == nil {
			continue
		}
		g.ID = i
		c.Graphs[i] = g
		c.alive[i] = true
		c.aliveN++
	}
	c.Index = BuildIndex(c.Graphs)
	for i, g := range c.Graphs {
		if g == nil {
			continue
		}
		c.lo[i] = 1
		c.up[i] = c.upperBound(g)
	}
	c.refreshSeeds()
}

// upperBound implements Lemma 6.2: for every node position k of t, some
// edge covering k must appear in the pivot path, so the largest inverted
// list among the labels of covering edges bounds the pivot support; the
// smallest such bound over all k is the tightest.
func (c *Context) upperBound(g *tgraph.Graph) int {
	m := g.N - 1 // positions 1..m must be covered
	ub := make([]int, m+1)
	for i := 1; i <= m; i++ {
		for _, e := range g.Adj[i] {
			best := 0
			for _, f := range e.Labels {
				if n := c.Index.GraphCount(f); n > best {
					best = n
				}
			}
			for k := i; k < e.To && k <= m; k++ {
				if best > ub[k] {
					ub[k] = best
				}
			}
		}
	}
	min := math.MaxInt
	for k := 1; k <= m; k++ {
		if ub[k] < min {
			min = ub[k]
		}
	}
	if min == math.MaxInt {
		min = 1
	}
	if alive := c.aliveN; min > alive {
		min = alive
	}
	return min
}

// refreshSeeds rebuilds the initial posting list ⟨G,1,1⟩ over alive
// graphs (the "ℓ contains all the graphs in G" initialization of
// Algorithm 2 line 5).
func (c *Context) refreshSeeds() {
	c.seeds = c.seeds[:0]
	for i, ok := range c.alive {
		if ok {
			c.seeds = append(c.seeds, Posting{G: int32(i), I: 1, J: 1})
		}
	}
	c.seedsGen = c.gen
}

func (c *Context) seedList() []Posting {
	if c.seedsGen != c.gen {
		c.refreshSeeds()
	}
	return c.seeds
}

// remove marks the replacement at index i dead; future intersections and
// counts ignore it.
func (c *Context) remove(i int) {
	if !c.prepared {
		if c.preDead == nil {
			c.preDead = make(map[int]bool)
		}
		c.preDead[i] = true
		return
	}
	if c.alive[i] {
		c.alive[i] = false
		c.aliveN--
		c.gen++
	}
}

// pathSupport recomputes the spanning support of a label path against the
// current alive set. Used to validate stale lower-bound witnesses after
// removals and to materialize witness groups.
func (c *Context) pathSupport(path []tgraph.LabelID) []int32 {
	l := c.seedList()
	for _, f := range path {
		l = intersect(l, c.Index.List(f), c.alive)
		if len(l) == 0 {
			return nil
		}
	}
	return spanningGraphs(l, c.Graphs)
}

// Program materializes a label path as a dsl.Program.
func (c *Context) Program(path []tgraph.LabelID) dsl.Program {
	if c.Reg == nil || path == nil {
		return nil
	}
	return c.Reg.Program(path)
}

// splitByStructure partitions replacements into contexts by the
// structure signature of Definition 4.
func splitByStructure(reps []Rep) []*Context {
	sigs := make([]string, len(reps))
	for i, r := range reps {
		sigs[i] = structure.PairSignature(r.S, r.T)
	}
	parts := structure.Partition(len(reps), func(i int) string { return sigs[i] })
	out := make([]*Context, 0, len(parts))
	for _, idxs := range parts {
		group := make([]Rep, 0, len(idxs))
		for _, i := range idxs {
			group = append(group, reps[i])
		}
		out = append(out, newContext(sigs[idxs[0]], group))
	}
	return out
}
