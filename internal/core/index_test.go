package core

import (
	"testing"

	"github.com/goldrec/goldrec/internal/dsl"
	"github.com/goldrec/goldrec/internal/tgraph"
)

// example51Context builds the three-replacement context of Example 5.1:
// φ1 = "Lee, Mary"→"M. Lee", φ2 = "Smith, James"→"J. Smith",
// φ3 = "Lee, Mary"→"Mary Lee". The paper groups them in one pool, so the
// test bypasses the structure partition.
func example51Context(t *testing.T) *Context {
	t.Helper()
	c := newContext("test", []Rep{
		{S: "Lee, Mary", T: "M. Lee", Ext: 0},
		{S: "Smith, James", T: "J. Smith", Ext: 1},
		{S: "Lee, Mary", T: "Mary Lee", Ext: 2},
	})
	c.Prepare(tgraph.Options{})
	return c
}

func labelIDOf(t *testing.T, c *Context, f dsl.Func) tgraph.LabelID {
	t.Helper()
	return c.Reg.Intern(f)
}

func TestInvertedListsExample51(t *testing.T) {
	c := example51Context(t)
	// Example 5.1: I[f1] = (⟨G1,4,7⟩, ⟨G2,4,9⟩, ⟨G3,6,9⟩),
	// I[f2] = (⟨G1,1,2⟩, ⟨G2,1,2⟩, ⟨G3,1,2⟩), I[f3] = (⟨G1,2,4⟩, ⟨G2,2,4⟩).
	f1 := labelIDOf(t, c, dsl.SubStr{
		L: dsl.MatchPos{Term: dsl.TermCapital, K: 1, Dir: dsl.DirBegin},
		R: dsl.MatchPos{Term: dsl.TermLower, K: 1, Dir: dsl.DirEnd},
	})
	f2 := labelIDOf(t, c, dsl.SubStr{
		L: dsl.MatchPos{Term: dsl.TermSpace, K: 1, Dir: dsl.DirEnd},
		R: dsl.MatchPos{Term: dsl.TermCapital, K: -1, Dir: dsl.DirEnd},
	})
	f3 := labelIDOf(t, c, dsl.ConstantStr{S: ". "})

	want := map[string][]Posting{
		"f1": {{0, 4, 7}, {1, 4, 9}, {2, 6, 9}},
		"f2": {{0, 1, 2}, {1, 1, 2}, {2, 1, 2}},
		"f3": {{0, 2, 4}, {1, 2, 4}},
	}
	check := func(name string, id tgraph.LabelID) {
		t.Helper()
		got := c.Index.List(id)
		if len(got) != len(want[name]) {
			t.Fatalf("I[%s] = %v, want %v", name, got, want[name])
		}
		for i, p := range want[name] {
			if got[i] != p {
				t.Fatalf("I[%s][%d] = %v, want %v", name, i, got[i], p)
			}
		}
	}
	check("f1", f1)
	check("f2", f2)
	check("f3", f3)

	// I[f2] ∩ I[f3] ∩ I[f1] = (⟨G1,1,7⟩, ⟨G2,1,9⟩): the path f2⊕f3⊕f1
	// is contained by φ1 and φ2 only.
	l := intersect(c.seedList(), c.Index.List(f2), c.alive)
	l = intersect(l, c.Index.List(f3), c.alive)
	l = intersect(l, c.Index.List(f1), c.alive)
	if len(l) != 2 || l[0] != (Posting{0, 1, 7}) || l[1] != (Posting{1, 1, 9}) {
		t.Fatalf("I[f2]∩I[f3]∩I[f1] = %v, want [{0 1 7} {1 1 9}]", l)
	}
	span := spanningGraphs(l, c.Graphs)
	if len(span) != 2 || span[0] != 0 || span[1] != 1 {
		t.Fatalf("spanning = %v, want [0 1]", span)
	}
}

func TestIntersectAdjacencyRequired(t *testing.T) {
	// Entries of the same graph only join when j1 == i2.
	l := []Posting{{0, 1, 3}}
	list := []Posting{{0, 2, 5}, {0, 3, 6}}
	got := intersect(l, list, nil)
	if len(got) != 1 || got[0] != (Posting{0, 1, 6}) {
		t.Fatalf("intersect = %v, want [{0 1 6}]", got)
	}
}

func TestIntersectDropsDeadGraphs(t *testing.T) {
	l := []Posting{{0, 1, 2}, {1, 1, 2}}
	list := []Posting{{0, 2, 3}, {1, 2, 3}}
	alive := []bool{true, false}
	got := intersect(l, list, alive)
	if len(got) != 1 || got[0].G != 0 {
		t.Fatalf("intersect = %v, want only graph 0", got)
	}
}

func TestIntersectDeduplicates(t *testing.T) {
	// Two different chains that land on the same (G,i,j) must appear
	// once.
	l := []Posting{{0, 1, 2}, {0, 1, 3}}
	list := []Posting{{0, 2, 4}, {0, 3, 4}}
	got := intersect(l, list, nil)
	if len(got) != 1 || got[0] != (Posting{0, 1, 4}) {
		t.Fatalf("intersect = %v, want [{0 1 4}]", got)
	}
}

func TestIntersectDisjointGraphs(t *testing.T) {
	l := []Posting{{0, 1, 2}}
	list := []Posting{{1, 2, 3}}
	if got := intersect(l, list, nil); len(got) != 0 {
		t.Fatalf("intersect = %v, want empty", got)
	}
}

func TestDistinctGraphs(t *testing.T) {
	l := []Posting{{0, 1, 2}, {0, 1, 3}, {2, 1, 2}}
	if got := distinctGraphs(l); got != 2 {
		t.Errorf("distinctGraphs = %d, want 2", got)
	}
	if got := distinctGraphs(nil); got != 0 {
		t.Errorf("distinctGraphs(nil) = %d, want 0", got)
	}
}

func TestSpanningGraphsChecksFinalNode(t *testing.T) {
	c := example51Context(t)
	// G1 has final node 7; a posting reaching only node 4 must not
	// count as spanning.
	l := []Posting{{0, 1, 4}, {1, 1, 9}}
	span := spanningGraphs(l, c.Graphs)
	if len(span) != 1 || span[0] != 1 {
		t.Fatalf("spanning = %v, want [1]", span)
	}
}

func TestIndexGraphCountCountsDistinctGraphs(t *testing.T) {
	c := example51Context(t)
	f3 := labelIDOf(t, c, dsl.ConstantStr{S: ". "})
	if got := c.Index.GraphCount(f3); got != 2 {
		t.Errorf("GraphCount(f3) = %d, want 2", got)
	}
}
