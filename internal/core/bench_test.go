package core

import (
	"fmt"
	"testing"

	"github.com/goldrec/goldrec/internal/tgraph"
)

// graphOptionsMinimal is the paper's speed configuration (Appendix E
// static orders).
func graphOptionsMinimal() tgraph.Options {
	return tgraph.Options{MinimalSubStr: true}
}

// benchPool plants n replacements across three transformation families.
func benchPool(n int) []Rep {
	firsts := []string{"mary", "james", "anna", "paul", "dana", "kim", "lou", "sal"}
	lasts := []string{"lee", "smith", "jones", "wu", "park", "diaz", "cole", "reyes"}
	reps := make([]Rep, 0, n)
	for i := 0; i < n; i++ {
		f := firsts[i%len(firsts)]
		l := lasts[(i/len(firsts))%len(lasts)]
		switch i % 3 {
		case 0:
			reps = append(reps, Rep{S: l + ", " + f, T: f + " " + l, Ext: i})
		case 1:
			reps = append(reps, Rep{S: l + ", " + f, T: f[:1] + ". " + l, Ext: i})
		default:
			reps = append(reps, Rep{S: f + " " + l, T: l + ", " + f, Ext: i})
		}
	}
	return reps
}

func benchOptions() Options {
	return Options{
		ConstantScoring: true,
		Graph:           graphOptionsMinimal(),
	}
}

func BenchmarkAllGroupsEarlyTerm(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			reps := benchPool(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(reps, benchOptions())
				groups := e.AllGroups(ModeEarlyTerm)
				if len(groups) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

func BenchmarkNextGroupFirstCall(b *testing.B) {
	reps := benchPool(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(reps, benchOptions())
		if g := e.NextGroup(); g == nil {
			b.Fatal("no group")
		}
	}
}

func BenchmarkNextGroupDrain(b *testing.B) {
	reps := benchPool(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(reps, benchOptions())
		for e.NextGroup() != nil {
		}
	}
}

func BenchmarkSearchPivot(b *testing.B) {
	c := newContext("bench", benchPool(128))
	c.Prepare(graphOptionsMinimal())
	opts := SearchOpts{LocalTerm: true, GlobalTerm: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset bounds so each iteration does full work.
		for gi := range c.lo {
			if c.Graphs[gi] != nil {
				c.lo[gi] = 1
			}
		}
		if _, ok := c.SearchPivot(c.Graphs[0], 0, opts); !ok {
			b.Fatal("no pivot")
		}
	}
}

func BenchmarkIntersect(b *testing.B) {
	l := make([]Posting, 0, 1024)
	r := make([]Posting, 0, 1024)
	for g := int32(0); g < 1024; g++ {
		l = append(l, Posting{G: g, I: 1, J: 3})
		if g%2 == 0 {
			r = append(r, Posting{G: g, I: 3, J: 7})
		}
	}
	alive := make([]bool, 1024)
	for i := range alive {
		alive[i] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := intersect(l, r, alive)
		if len(out) != 512 {
			b.Fatal("bad intersection")
		}
	}
}
