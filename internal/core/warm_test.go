package core

import (
	"sync"
	"testing"

	"github.com/goldrec/goldrec/internal/dsl"
)

// transposeProgram maps "First Last" to "Last, First" — the canonical
// cross-cluster transformation of Table 1.
func transposeProgram() dsl.Program {
	return dsl.Program{
		dsl.SubStr{
			L: dsl.MatchPos{Term: dsl.TermCapital, K: 2, Dir: dsl.DirBegin},
			R: dsl.ConstPos{K: -1},
		},
		dsl.ConstantStr{S: ", "},
		dsl.SubStr{
			L: dsl.ConstPos{K: 1},
			R: dsl.MatchPos{Term: dsl.TermSpace, K: 1, Dir: dsl.DirBegin},
		},
	}
}

func TestWarmPreapplyClaimsMatches(t *testing.T) {
	reps := []Rep{
		{S: "Mary Lee", T: "Lee, Mary", Ext: 0},
		{S: "James Smith", T: "Smith, James", Ext: 1},
		{S: "Mary Lee", T: "M. Lee", Ext: 2},
	}
	e := NewEngine(reps, Options{
		Warm: []WarmPrior{{Program: transposeProgram(), Approvals: 3}},
	})
	warm := e.WarmGroups()
	if len(warm) != 1 {
		t.Fatalf("WarmGroups = %d groups, want 1", len(warm))
	}
	g := warm[0]
	if !g.Warm {
		t.Errorf("warm group not flagged Warm")
	}
	if g.Sig == "" {
		t.Errorf("warm group has empty structure signature")
	}
	if g.Size() != 2 {
		t.Fatalf("warm group size = %d, want 2", g.Size())
	}
	got := map[int]bool{}
	for _, m := range g.Members {
		got[m.Ext] = true
	}
	if !got[0] || !got[1] {
		t.Errorf("warm members = %v, want exts 0 and 1", g.Members)
	}
	// The claimed replacements are gone from the search: only ext 2
	// remains groupable.
	groups := e.AllGroups(ModeEarlyTerm)
	if len(groups) != 1 || groups[0].Size() != 1 || groups[0].Members[0].Ext != 2 {
		t.Fatalf("post-warm groups = %v, want one singleton with ext 2", groupSizes(groups))
	}
	if groups[0].Warm {
		t.Errorf("searched group flagged Warm")
	}
}

func TestWarmSkipsNondeterministicAndEmpty(t *testing.T) {
	reps := []Rep{{S: "abc", T: "ab", Ext: 0}}
	e := NewEngine(reps, Options{
		Warm: []WarmPrior{
			{Program: dsl.Program{}, Approvals: 5},
			{Program: dsl.Program{dsl.Prefix{Term: dsl.TermLower, K: 1}}, Approvals: 5},
		},
	})
	if len(e.WarmGroups()) != 0 {
		t.Fatalf("non-deterministic priors formed warm groups: %v", e.WarmGroups())
	}
	if groups := e.AllGroups(ModeEarlyTerm); len(groups) != 1 {
		t.Fatalf("groups = %v, want the rep untouched", groupSizes(groups))
	}
}

func TestWarmFirstPriorWins(t *testing.T) {
	reps := []Rep{{S: "Mary Lee", T: "Lee, Mary", Ext: 0}}
	constant := dsl.Program{dsl.ConstantStr{S: "Lee, Mary"}}
	e := NewEngine(reps, Options{
		Warm: []WarmPrior{
			{Program: constant, Approvals: 1},
			{Program: transposeProgram(), Approvals: 9},
		},
	})
	warm := e.WarmGroups()
	if len(warm) != 1 || warm[0].Size() != 1 {
		t.Fatalf("WarmGroups = %v, want one singleton", warm)
	}
	if warm[0].Program.Key() != constant.Key() {
		t.Errorf("claimed by %q, want the first prior %q", warm[0].Program.Key(), constant.Key())
	}
}

func TestWarmWithConstantScoring(t *testing.T) {
	// Warm claiming must compose with the Appendix E scorer: the
	// frequency maps count only unclaimed replacements and grouping
	// still terminates on what remains.
	reps := table1NameReps()
	e := NewEngine(reps, Options{
		ConstantScoring: true,
		Warm:            []WarmPrior{{Program: transposeProgram(), Approvals: 2}},
	})
	warm := e.WarmGroups()
	if len(warm) != 1 || warm[0].Size() != 2 {
		t.Fatalf("WarmGroups = %v, want one group of 2", warm)
	}
	claimed := map[int]bool{}
	for _, m := range warm[0].Members {
		claimed[m.Ext] = true
	}
	groups := e.AllGroups(ModeEarlyTerm)
	total := 0
	for _, g := range groups {
		for _, m := range g.Members {
			if claimed[m.Ext] {
				t.Fatalf("ext %d grouped twice (warm and searched)", m.Ext)
			}
			total++
		}
	}
	if total != len(reps)-2 {
		t.Fatalf("searched %d replacements, want %d", total, len(reps)-2)
	}
}

// TestSkippedConcurrentWithAllGroups is the regression test for the
// prepare/AllGroups skipped-count race: Skipped must be readable while
// the parallel group search is publishing unbuildable-replacement
// counts from its workers. Run under -race this fails on the old plain
// int counter.
func TestSkippedConcurrentWithAllGroups(t *testing.T) {
	var reps []Rep
	for i := 0; i < 16; i++ {
		reps = append(reps, Rep{S: "", T: "x", Ext: i*3 + 0})
		reps = append(reps, Rep{S: "ab", T: "ba", Ext: i*3 + 1})
		reps = append(reps, Rep{S: "Mary Lee", T: "M. Lee", Ext: i*3 + 2})
	}
	e := NewEngine(reps, Options{Parallel: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Skipped()
			}
		}
	}()
	_ = e.AllGroups(ModeEarlyTerm)
	close(stop)
	wg.Wait()
	if e.Skipped() != 16 {
		t.Errorf("Skipped = %d, want 16", e.Skipped())
	}
}
