package core

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"github.com/goldrec/goldrec/internal/dsl"
	"github.com/goldrec/goldrec/internal/obs/trace"
	"github.com/goldrec/goldrec/internal/tgraph"
)

// Mode selects the grouping algorithm variant of Section 8.2.
type Mode int

const (
	// ModeOneShot is the vanilla UnsupervisedGrouping of Algorithm 2:
	// no early termination.
	ModeOneShot Mode = iota
	// ModeEarlyTerm adds the two threshold-based early terminations of
	// Section 5.2 (Algorithm 4).
	ModeEarlyTerm
)

// Options configure a grouping engine.
type Options struct {
	// Graph controls transformation-graph construction.
	Graph tgraph.Options
	// MaxPathLen is θ (default 6).
	MaxPathLen int
	// ConstantScoring enables the Appendix E constant-string static
	// order using freqStruc/sqrt(freqGlobal) scores.
	ConstantScoring bool
	// MaxConstLen caps the substring length tracked by the frequency
	// maps (default 16); longer substrings score zero and are pruned
	// (the whole-string constant is always kept by the builder).
	MaxConstLen int
	// MaxSteps bounds each pivot search's DFS extensions
	// (0 = unlimited). With a budget the engine degrades gracefully on
	// dense graphs (e.g. when the Appendix E static orders are
	// disabled for ablation) at the cost of exactness: a truncated
	// search may miss the true pivot.
	MaxSteps int
	// Parallel prepares structure groups and searches pivots on all
	// CPUs in AllGroups. Results are deterministic either way.
	Parallel bool
	// Warm seeds the engine with prior programs from a transformation
	// library. Deterministic priors are pre-applied before grouping:
	// every alive replacement a prior maps exactly (Run(S) == T) is
	// claimed into a pre-decided warm group and excluded from the
	// search. Priors are tried in slice order, so callers must order
	// them deterministically (the library sorts by canonical key);
	// non-deterministic programs are skipped — affix functions have
	// many outputs and cannot pre-decide anything.
	Warm []WarmPrior
}

// WarmPrior is one library program offered to the engine for
// warm-start pre-application, with its historical review outcomes.
type WarmPrior struct {
	Program    dsl.Program
	Approvals  int
	Rejections int
}

const defaultMaxConstLen = 16

// Group is one replacement group: the set of replacements that share the
// pivot transformation path Path (a program in the DSL) and the structure
// signature Sig.
type Group struct {
	Sig     string
	Path    []tgraph.LabelID
	Program dsl.Program
	Members []Rep
	// Warm marks a group pre-decided from a library prior during
	// warm start rather than discovered by the pivot search.
	Warm bool
}

// Size returns the number of member replacements.
func (g *Group) Size() int { return len(g.Members) }

// Engine partitions candidate replacements by structure (Section 7.2)
// and groups each partition by shared pivot paths. It supports both the
// upfront AllGroups (Algorithm 2) and the incremental NextGroup
// (Algorithms 5-7).
type Engine struct {
	opts Options
	ctxs []*Context
	// loc maps an external replacement id to its context and index.
	loc map[int]struct {
		ctx *Context
		idx int
	}
	globalFreq map[string]int
	units      *unitHeap
	warm       []*Group
	// skipped is atomic: the serial prepare path (NextGroup's lazy
	// builds) and AllGroups' parallel workers both add to it, and
	// Skipped may be read concurrently with either.
	skipped atomic.Int64

	// Phase timings in nanoseconds, accumulated atomically so the
	// parallel AllGroups path can contribute from worker goroutines.
	// With Parallel enabled, build/search sum CPU time across workers
	// and can exceed wall clock.
	prepNanos   atomic.Int64
	buildNanos  atomic.Int64
	searchNanos atomic.Int64
}

// Timings reports cumulative time spent in each engine phase: context
// preparation (structure split and frequency maps in NewEngine), graph
// build (tgraph construction and indexing in Context.Prepare), and
// group search (pivot path search and group assembly).
type Timings struct {
	ContextPrep time.Duration
	GraphBuild  time.Duration
	GroupSearch time.Duration
}

// Timings returns the engine's accumulated phase timings.
func (e *Engine) Timings() Timings {
	return Timings{
		ContextPrep: time.Duration(e.prepNanos.Load()),
		GraphBuild:  time.Duration(e.buildNanos.Load()),
		GroupSearch: time.Duration(e.searchNanos.Load()),
	}
}

// GraphStats sums the sizes of every transformation graph built so far
// (unprepared contexts contribute nothing — graphs build lazily in the
// incremental algorithm). Not safe concurrently with AllGroups.
func (e *Engine) GraphStats() tgraph.Stats {
	var total tgraph.Stats
	for _, c := range e.ctxs {
		if !c.Prepared() {
			continue
		}
		for _, g := range c.Graphs {
			s := g.Stats()
			total.Nodes += s.Nodes
			total.Edges += s.Edges
			total.Labels += s.Labels
		}
	}
	return total
}

// NewEngine builds the engine over a set of candidate replacements. Ext
// ids must be unique.
func NewEngine(reps []Rep, opts Options) *Engine {
	return NewEngineCtx(context.Background(), reps, opts)
}

// NewEngineCtx is NewEngine carrying a trace context: construction is
// the paper pipeline's context_prep phase (structure split plus
// frequency maps) and records as one span on the request that opened
// the session.
func NewEngineCtx(ctx context.Context, reps []Rep, opts Options) *Engine {
	pctx, sp := trace.StartSpan(ctx, "context_prep")
	defer sp.End()
	start := time.Now()
	if opts.MaxConstLen <= 0 {
		opts.MaxConstLen = defaultMaxConstLen
	}
	e := &Engine{opts: opts}
	e.ctxs = splitByStructure(reps)
	e.loc = make(map[int]struct {
		ctx *Context
		idx int
	}, len(reps))
	for _, c := range e.ctxs {
		for i, r := range c.Reps {
			e.loc[r.Ext] = struct {
				ctx *Context
				idx int
			}{c, i}
		}
	}
	if len(opts.Warm) > 0 {
		e.preapplyWarm(pctx)
	}
	if opts.ConstantScoring {
		e.globalFreq = make(map[string]int)
		// Count over what grouping will actually see: warm-claimed
		// replacements are already decided and must not skew the
		// constant scores.
		for _, c := range e.ctxs {
			for i, r := range c.Reps {
				if c.preDead[i] {
					continue
				}
				countSubstrings(e.globalFreq, r.T, opts.MaxConstLen)
			}
		}
	}
	e.units = &unitHeap{}
	for ci, c := range e.ctxs {
		heap.Push(e.units, unit{ctx: ci, gi: -1, up: c.AliveCount()})
	}
	e.prepNanos.Store(time.Since(start).Nanoseconds())
	return e
}

// preapplyWarm claims replacements exactly reproduced by deterministic
// library priors into pre-decided warm groups, before any graph is
// built. One warm group forms per (prior, structure group) pair so a
// group keeps the single signature the review UI renders. Priors are
// tried in order; a replacement claimed by an earlier prior is gone for
// later ones, so the whole pass is deterministic for a fixed prior
// order and replacement set.
func (e *Engine) preapplyWarm(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "library_preapply")
	defer sp.End()
	matched := 0
	for _, w := range e.opts.Warm {
		if len(w.Program) == 0 || !w.Program.Deterministic() {
			continue
		}
		for _, c := range e.ctxs {
			var members []Rep
			for i, r := range c.Reps {
				if c.preDead[i] {
					continue
				}
				if out, ok := w.Program.Run(r.S); ok && out == r.T {
					members = append(members, r)
				}
			}
			if len(members) == 0 {
				continue
			}
			for _, r := range members {
				if l, ok := e.loc[r.Ext]; ok {
					l.ctx.remove(l.idx)
				}
			}
			matched += len(members)
			e.warm = append(e.warm, &Group{
				Sig:     c.Sig,
				Program: w.Program,
				Members: members,
				Warm:    true,
			})
		}
	}
	sp.Annotate("priors", strconv.Itoa(len(e.opts.Warm)))
	sp.Annotate("groups", strconv.Itoa(len(e.warm)))
	sp.Annotate("members", strconv.Itoa(matched))
}

// WarmGroups returns the pre-decided groups formed from library priors
// at construction, in formation order. The slice is owned by the
// engine; callers must not mutate it.
func (e *Engine) WarmGroups() []*Group { return e.warm }

// NumContexts returns the number of structure groups.
func (e *Engine) NumContexts() int { return len(e.ctxs) }

// Skipped returns how many replacements could not be graphed (empty or
// overlong strings) and were excluded from grouping.
func (e *Engine) Skipped() int { return int(e.skipped.Load()) }

// graphOptions returns the tgraph options for one context, wiring in the
// per-structure-group constant scorer when enabled.
func (e *Engine) graphOptions(c *Context) tgraph.Options {
	opt := e.opts.Graph
	if e.opts.ConstantScoring {
		structFreq := make(map[string]int)
		for i, r := range c.Reps {
			if c.preDead[i] {
				continue
			}
			countSubstrings(structFreq, r.T, e.opts.MaxConstLen)
		}
		maxLen := e.opts.MaxConstLen
		global := e.globalFreq
		opt.ConstantScore = func(sub string) float64 {
			if len(sub) > maxLen {
				return 0
			}
			fs := structFreq[sub]
			fg := global[sub]
			if fg == 0 {
				fg = 1
			}
			return float64(fs) / math.Sqrt(float64(fg))
		}
	}
	return opt
}

func (e *Engine) prepare(ctx context.Context, c *Context) {
	if c.Prepared() {
		return
	}
	before := c.AliveCount()
	start := time.Now()
	_, sp := trace.StartSpan(ctx, "graph_build")
	c.Prepare(e.graphOptions(c))
	sp.End()
	e.buildNanos.Add(time.Since(start).Nanoseconds())
	e.skipped.Add(int64(before - c.AliveCount()))
}

// searchOpts returns the per-mode pivot search options.
func (e *Engine) searchOpts(mode Mode) SearchOpts {
	return SearchOpts{
		MaxPathLen: e.opts.MaxPathLen,
		LocalTerm:  mode != ModeOneShot,
		GlobalTerm: mode != ModeOneShot,
		MaxSteps:   e.opts.MaxSteps,
	}
}

// AllGroups runs the upfront grouping of Algorithm 2: every alive
// replacement is assigned to the group of its pivot path, and the groups
// are returned sorted by size descending (the verification order of
// Section 3 Step 3).
func (e *Engine) AllGroups(mode Mode) []*Group {
	return e.AllGroupsCtx(context.Background(), mode)
}

// AllGroupsCtx is AllGroups carrying a trace context: the whole call
// records as one group_search span, and each lazily-built context
// graph records a graph_build child (parallel builds appear as
// overlapping siblings in the waterfall).
func (e *Engine) AllGroupsCtx(ctx context.Context, mode Mode) []*Group {
	sctx, sp := trace.StartSpan(ctx, "group_search")
	defer sp.End()
	workers := 1
	if e.opts.Parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	type ctxGroups struct {
		ci     int
		groups []*Group
	}
	results := make([]ctxGroups, len(e.ctxs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci, c := range e.ctxs {
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int, c *Context) {
			defer func() { <-sem; wg.Done() }()
			if !c.Prepared() {
				before := c.AliveCount()
				start := time.Now()
				_, bsp := trace.StartSpan(sctx, "graph_build")
				c.Prepare(e.graphOptions(c))
				bsp.End()
				e.buildNanos.Add(time.Since(start).Nanoseconds())
				e.skipped.Add(int64(before - c.AliveCount()))
			}
			start := time.Now()
			groups := e.groupContext(c, mode)
			e.searchNanos.Add(time.Since(start).Nanoseconds())
			results[ci] = ctxGroups{ci: ci, groups: groups}
		}(ci, c)
	}
	wg.Wait()
	var all []*Group
	for _, r := range results {
		all = append(all, r.groups...)
	}
	sortGroups(all)
	return all
}

// groupContext groups one prepared context by pivot path. Because a
// graph can have several pivot paths with the same (maximal) support, the
// raw per-graph search result is DFS-order dependent and would split
// groups that Algorithm 7 keeps together; a canonical second pass assigns
// every graph to the lexicographically smallest path among its
// maximal-support candidates, which restores the paper's claim that the
// one-shot and incremental algorithms produce the same groups.
func (e *Engine) groupContext(c *Context, mode Mode) []*Group {
	opts := e.searchOpts(mode)
	type found struct {
		gi    int
		count int
	}
	var founds []found
	paths := make(map[string][]tgraph.LabelID)
	for gi, g := range c.Graphs {
		if g == nil || !c.alive[gi] {
			continue
		}
		res, ok := c.SearchPivot(g, 0, opts)
		if !ok {
			// Cannot happen: the whole-string constant path always
			// spans g itself. Guard anyway.
			continue
		}
		founds = append(founds, found{gi: gi, count: res.count})
		paths[pathKey(res.path)] = res.path
	}
	// Support sets of every distinct pivot path found.
	type pathInfo struct {
		key     string
		path    []tgraph.LabelID
		support map[int32]bool
		size    int
	}
	keys := make([]string, 0, len(paths))
	for k := range paths {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	infos := make([]pathInfo, 0, len(keys))
	for _, k := range keys {
		sup := c.pathSupport(paths[k])
		m := make(map[int32]bool, len(sup))
		for _, g := range sup {
			m[g] = true
		}
		infos = append(infos, pathInfo{key: k, path: paths[k], support: m, size: len(sup)})
	}
	// Canonical assignment: smallest key among max-support candidates.
	byPath := make(map[string]*Group)
	var order []string
	for _, f := range founds {
		var chosen *pathInfo
		for i := range infos {
			in := &infos[i]
			if in.size == f.count && in.support[int32(f.gi)] {
				chosen = in
				break // keys are sorted, first hit is smallest
			}
		}
		if chosen == nil {
			continue // unreachable: the graph's own pivot qualifies
		}
		grp, exists := byPath[chosen.key]
		if !exists {
			grp = &Group{Sig: c.Sig, Path: chosen.path, Program: c.Program(chosen.path)}
			byPath[chosen.key] = grp
			order = append(order, chosen.key)
		}
		grp.Members = append(grp.Members, c.Reps[f.gi])
	}
	out := make([]*Group, 0, len(order))
	for _, key := range order {
		out = append(out, byPath[key])
	}
	return out
}

func pathKey(path []tgraph.LabelID) string {
	b := make([]byte, 0, len(path)*4)
	for _, id := range path {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// sortGroups orders groups by size descending with deterministic
// tie-breaking (structure signature, then program rendering).
func sortGroups(gs []*Group) {
	sort.Slice(gs, func(a, b int) bool {
		if len(gs[a].Members) != len(gs[b].Members) {
			return len(gs[a].Members) > len(gs[b].Members)
		}
		if gs[a].Sig != gs[b].Sig {
			return gs[a].Sig < gs[b].Sig
		}
		pa, pb := gs[a].Program.Key(), gs[b].Program.Key()
		if pa != pb {
			return pa < pb
		}
		return gs[a].Members[0].Ext < gs[b].Members[0].Ext
	})
}

// Remove drops replacements (by external id) from future grouping — the
// framework calls it when an applied group empties a replacement set
// (Section 7.1).
func (e *Engine) Remove(exts ...int) {
	for _, ext := range exts {
		if l, ok := e.loc[ext]; ok {
			l.ctx.remove(l.idx)
		}
	}
}

// ---- incremental engine (Section 6, Algorithms 5-7) ----

type unit struct {
	ctx int
	gi  int // -1 = unprepared context placeholder
	up  int
}

type unitHeap []unit

func (h unitHeap) Len() int            { return len(h) }
func (h unitHeap) Less(i, j int) bool  { return h[i].up > h[j].up }
func (h unitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *unitHeap) Push(x interface{}) { *h = append(*h, x.(unit)) }
func (h *unitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// validatedTau computes τ, the largest *validated* lower bound among
// alive graphs. Lower bounds whose witness predates a removal are
// re-validated by re-intersecting the witness path (DESIGN.md: witnessed
// lower bounds keep Theorem 6.4 correct under removals).
func (e *Engine) validatedTau() (tau int, ctx *Context, gi int) {
	tau = 1
	for {
		best, bestCtx, bestGi := 1, (*Context)(nil), -1
		for _, c := range e.ctxs {
			if !c.Prepared() {
				continue
			}
			for i := range c.Graphs {
				if c.Graphs[i] == nil || !c.alive[i] || c.lo[i] <= best {
					continue
				}
				best, bestCtx, bestGi = c.lo[i], c, i
			}
		}
		if bestCtx == nil {
			return tau, nil, -1
		}
		if bestCtx.witnessGen[bestGi] == bestCtx.gen {
			return best, bestCtx, bestGi
		}
		// Stale: re-validate against the alive set.
		support := bestCtx.pathSupport(bestCtx.witness[bestGi])
		n := len(support)
		if n < 1 {
			n = 1
		}
		bestCtx.lo[bestGi] = n
		bestCtx.witnessGen[bestGi] = bestCtx.gen
	}
}

// NextGroup is GenerateNextLargestGroup (Algorithm 7): it returns the
// largest remaining replacement group and removes its members from
// future consideration. It returns nil when no replacements remain.
func (e *Engine) NextGroup() *Group {
	return e.NextGroupCtx(context.Background())
}

// NextGroupCtx is NextGroup carrying a trace context: the call records
// as one group_search span, with a graph_build child per context whose
// graphs it had to build lazily along the way.
func (e *Engine) NextGroupCtx(ctx context.Context) *Group {
	var sp *trace.Span
	ctx, sp = trace.StartSpan(ctx, "group_search")
	defer sp.End()
	start := time.Now()
	buildBefore := e.buildNanos.Load()
	defer func() {
		// Graph builds triggered lazily inside this call are already
		// accounted to the build phase; the remainder is search.
		buildDelta := e.buildNanos.Load() - buildBefore
		e.searchNanos.Add(time.Since(start).Nanoseconds() - buildDelta)
	}()
	tau, tauCtx, tauGi := e.validatedTau()
	var best searchResult
	var bestCtx *Context
	best.count = tau
	var fallbackCtx *Context
	fallbackGi := -1

	searchOpts := SearchOpts{
		MaxPathLen: e.opts.MaxPathLen,
		LocalTerm:  true,
		GlobalTerm: true,
		MaxSteps:   e.opts.MaxSteps,
	}

	for e.units.Len() > 0 {
		it := heap.Pop(e.units).(unit)
		c := e.ctxs[it.ctx]
		if it.gi == -1 {
			if c.Prepared() {
				continue // already expanded
			}
			if c.AliveCount() == 0 {
				continue
			}
			if tau >= it.up && fallbackCtx != nil {
				// Even this whole context cannot beat τ; put it back
				// for later invocations and stop.
				heap.Push(e.units, it)
				break
			}
			e.prepare(ctx, c)
			for gi, g := range c.Graphs {
				if g != nil && c.alive[gi] {
					heap.Push(e.units, unit{ctx: it.ctx, gi: gi, up: c.up[gi]})
				}
			}
			continue
		}
		if c.Graphs[it.gi] == nil || !c.alive[it.gi] {
			continue
		}
		if it.up != c.up[it.gi] {
			// Stale entry; reinsert with the current bound.
			heap.Push(e.units, unit{ctx: it.ctx, gi: it.gi, up: c.up[it.gi]})
			continue
		}
		if fallbackCtx == nil {
			fallbackCtx, fallbackGi = c, it.gi
		}
		if tau >= it.up {
			heap.Push(e.units, it)
			break
		}
		res, ok := c.SearchPivot(c.Graphs[it.gi], tau, searchOpts)
		if ok {
			tau = res.count
			best = res
			bestCtx = c
			c.lo[it.gi] = res.count
			c.up[it.gi] = res.count
			c.witness[it.gi] = res.path
			c.witnessGen[it.gi] = c.gen
		} else {
			c.up[it.gi] = tau
		}
		heap.Push(e.units, unit{ctx: it.ctx, gi: it.gi, up: c.up[it.gi]})
	}

	if bestCtx == nil {
		// No search beat τ. The largest group is the validated witness
		// (or a singleton when τ = 1).
		switch {
		case tauCtx != nil && tauCtx.witness[tauGi] != nil:
			path := tauCtx.witness[tauGi]
			support := tauCtx.pathSupport(path)
			if len(support) > 0 {
				best = searchResult{path: path, support: support, count: len(support)}
				bestCtx = tauCtx
			}
		}
		if bestCtx == nil && fallbackCtx != nil {
			res, ok := fallbackCtx.SearchPivot(fallbackCtx.Graphs[fallbackGi], 0,
				SearchOpts{MaxPathLen: e.opts.MaxPathLen, LocalTerm: true})
			if ok {
				best = res
				bestCtx = fallbackCtx
			}
		}
		if bestCtx == nil {
			return nil
		}
	}

	grp := &Group{
		Sig:     bestCtx.Sig,
		Path:    best.path,
		Program: bestCtx.Program(best.path),
	}
	for _, gid := range best.support {
		grp.Members = append(grp.Members, bestCtx.Reps[gid])
		bestCtx.remove(int(gid))
	}
	return grp
}

// runeScratch pools the decode buffers of non-ASCII substring
// counting, so repeated countSubstrings calls (one per replacement
// target, across every structure group) stop allocating a fresh
// []rune each time.
var runeScratch = sync.Pool{
	New: func() any {
		b := make([]rune, 0, 64)
		return &b
	},
}

func countSubstrings(m map[string]int, s string, maxLen int) {
	// ASCII fast path: byte positions are rune positions and string
	// slices share s's bytes, so counting allocates nothing beyond the
	// map's own growth.
	if isASCII(s) {
		for i := 0; i < len(s); i++ {
			for j := i + 1; j <= len(s) && j-i <= maxLen; j++ {
				m[s[i:j]]++
			}
		}
		return
	}
	rp := runeScratch.Get().(*[]rune)
	r := (*rp)[:0]
	for _, c := range s {
		r = append(r, c)
	}
	for i := 0; i < len(r); i++ {
		for j := i + 1; j <= len(r) && j-i <= maxLen; j++ {
			m[string(r[i:j])]++
		}
	}
	*rp = r
	runeScratch.Put(rp)
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}
