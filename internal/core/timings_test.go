package core

import "testing"

func timingReps() []Rep {
	return []Rep{
		{S: "J. Smith", T: "John Smith", Ext: 1},
		{S: "J. Doe", T: "John Doe", Ext: 2},
		{S: "A. Smith", T: "Ann Smith", Ext: 3},
		{S: "IBM Corp", T: "IBM", Ext: 4},
		{S: "Acme Corp", T: "Acme", Ext: 5},
	}
}

func TestTimingsAccumulate(t *testing.T) {
	e := NewEngine(timingReps(), Options{})
	tm := e.Timings()
	if tm.ContextPrep <= 0 {
		t.Errorf("ContextPrep = %v, want > 0 after NewEngine", tm.ContextPrep)
	}
	if tm.GraphBuild != 0 || tm.GroupSearch != 0 {
		t.Errorf("build/search = %v/%v, want 0 before any grouping", tm.GraphBuild, tm.GroupSearch)
	}
	if g := e.NextGroup(); g == nil {
		t.Fatal("NextGroup returned nil on fresh engine")
	}
	tm = e.Timings()
	if tm.GraphBuild <= 0 {
		t.Errorf("GraphBuild = %v, want > 0 after NextGroup", tm.GraphBuild)
	}
	if tm.GroupSearch < 0 {
		t.Errorf("GroupSearch = %v, want >= 0", tm.GroupSearch)
	}
	gs := e.GraphStats()
	if gs.Nodes == 0 || gs.Edges == 0 || gs.Labels == 0 {
		t.Errorf("GraphStats = %+v, want non-zero after lazy builds", gs)
	}
}

func TestTimingsAllGroupsParallel(t *testing.T) {
	e := NewEngine(timingReps(), Options{Parallel: true})
	if got := len(e.AllGroups(ModeEarlyTerm)); got == 0 {
		t.Fatal("AllGroups returned no groups")
	}
	tm := e.Timings()
	if tm.GraphBuild <= 0 || tm.GroupSearch <= 0 {
		t.Errorf("timings = %+v, want build and search > 0 after AllGroups", tm)
	}
}
