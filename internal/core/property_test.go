package core

import (
	"math/rand"
	"testing"

	"github.com/goldrec/goldrec/internal/tgraph"
)

// propPool builds a random replacement pool mixing short planted
// transformations with noise pairs.
func propPool(rng *rand.Rand, n int) []Rep {
	words := []string{"ab", "cd", "ef", "gh"}
	var reps []Rep
	for i := 0; i < n; i++ {
		a := words[rng.Intn(len(words))]
		b := words[rng.Intn(len(words))]
		switch rng.Intn(4) {
		case 0:
			reps = append(reps, Rep{S: a + " " + b, T: b + " " + a, Ext: i})
		case 1:
			reps = append(reps, Rep{S: a + "-" + b, T: a, Ext: i})
		case 2:
			reps = append(reps, Rep{S: a, T: a + "9", Ext: i})
		default:
			reps = append(reps, Rep{S: a + b, T: b, Ext: i})
		}
	}
	return reps
}

// TestGroupProgramConsistencyInvariant: the defining invariant of a
// replacement group — its program is consistent with every member
// (Definition 3(i)).
func TestGroupProgramConsistencyInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		reps := propPool(rng, 10+rng.Intn(30))
		for _, mode := range []Mode{ModeOneShot, ModeEarlyTerm} {
			e := NewEngine(reps, Options{})
			for _, g := range e.AllGroups(mode) {
				for _, m := range g.Members {
					if !g.Program.Consistent(m.S, m.T) {
						t.Fatalf("trial %d mode %d: program %v inconsistent with %q→%q",
							trial, mode, g.Program, m.S, m.T)
					}
				}
			}
		}
	}
}

// TestGroupsPartitionInvariant: AllGroups assigns every groupable
// replacement to exactly one group.
func TestGroupsPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		reps := propPool(rng, 10+rng.Intn(40))
		e := NewEngine(reps, Options{})
		groups := e.AllGroups(ModeEarlyTerm)
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, m := range g.Members {
				if seen[m.Ext] {
					t.Fatalf("trial %d: replacement %d in two groups", trial, m.Ext)
				}
				seen[m.Ext] = true
			}
		}
		if len(seen)+e.Skipped() != len(reps) {
			t.Fatalf("trial %d: covered %d + skipped %d of %d", trial, len(seen), e.Skipped(), len(reps))
		}
	}
}

// TestIncrementalSizeMonotonicityInvariant: Theorem 6.4 — the group
// stream is non-increasing in size and covers everything once.
func TestIncrementalSizeMonotonicityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		reps := propPool(rng, 10+rng.Intn(40))
		e := NewEngine(reps, Options{})
		prev := 1 << 30
		total := 0
		seen := make(map[int]bool)
		for {
			g := e.NextGroup()
			if g == nil {
				break
			}
			if g.Size() > prev {
				t.Fatalf("trial %d: group size %d after %d", trial, g.Size(), prev)
			}
			prev = g.Size()
			total += g.Size()
			for _, m := range g.Members {
				if seen[m.Ext] {
					t.Fatalf("trial %d: replacement %d returned twice", trial, m.Ext)
				}
				seen[m.Ext] = true
			}
			if !g.Program.Consistent(g.Members[0].S, g.Members[0].T) {
				t.Fatalf("trial %d: inconsistent incremental group", trial)
			}
		}
		if total+e.Skipped() != len(reps) {
			t.Fatalf("trial %d: covered %d + skipped %d of %d", trial, total, e.Skipped(), len(reps))
		}
	}
}

// TestUpperBoundInvariant: Lemma 6.2 — the initialized upper bound
// dominates the true pivot support for every graph.
func TestUpperBoundInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		reps := propPool(rng, 10+rng.Intn(25))
		ctxs := splitByStructure(reps)
		for _, c := range ctxs {
			c.Prepare(tgraph.Options{})
			for gi, g := range c.Graphs {
				if g == nil {
					continue
				}
				res, ok := c.SearchPivot(g, 0, SearchOpts{})
				if !ok {
					t.Fatalf("trial %d: graph %d has no pivot", trial, gi)
				}
				if res.count > c.up[gi] {
					t.Fatalf("trial %d: pivot support %d > upper bound %d for %q→%q",
						trial, res.count, c.up[gi], g.S, g.T)
				}
			}
		}
	}
}

// TestSupportMatchesMembershipInvariant: the spanning support returned
// by a seeded search equals the set of graphs whose pathSupport contains
// them (self-consistency of the index machinery).
func TestSupportMatchesMembershipInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		reps := propPool(rng, 10+rng.Intn(25))
		ctxs := splitByStructure(reps)
		for _, c := range ctxs {
			c.Prepare(tgraph.Options{})
			for gi, g := range c.Graphs {
				if g == nil {
					continue
				}
				res, ok := c.SearchPivot(g, 0, SearchOpts{LocalTerm: true})
				if !ok {
					continue
				}
				again := c.pathSupport(res.path)
				if len(again) != len(res.support) {
					t.Fatalf("trial %d graph %d: support %v vs recomputed %v",
						trial, gi, res.support, again)
				}
				for i := range again {
					if again[i] != res.support[i] {
						t.Fatalf("trial %d graph %d: support %v vs recomputed %v",
							trial, gi, res.support, again)
					}
				}
				// The searched graph itself is always in its pivot's
				// support.
				found := false
				for _, id := range res.support {
					if id == int32(gi) {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: graph %d missing from own pivot support", trial, gi)
				}
			}
		}
	}
}
