package core

import (
	"testing"

	"github.com/goldrec/goldrec/internal/tgraph"
)

func TestSearchPivotPaperTrace(t *testing.T) {
	// Table 5 / Example 5.2: the pivot path of G1 is shared by exactly
	// G1 and G2 (e.g. f2 ⊕ f3 ⊕ f1), beating the constant path that is
	// shared by G1 alone.
	for _, mode := range []struct {
		name string
		opts SearchOpts
	}{
		{"naive", SearchOpts{}},
		{"earlyterm", SearchOpts{LocalTerm: true, GlobalTerm: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c := example51Context(t)
			res, ok := c.SearchPivot(c.Graphs[0], 0, mode.opts)
			if !ok {
				t.Fatal("SearchPivot found nothing")
			}
			if res.count != 2 {
				t.Fatalf("pivot support = %d, want 2", res.count)
			}
			if len(res.support) != 2 || res.support[0] != 0 || res.support[1] != 1 {
				t.Fatalf("support = %v, want [0 1]", res.support)
			}
			// The pivot program must be consistent with both members
			// (they share the transformation).
			prog := c.Program(res.path)
			if !prog.Consistent("Lee, Mary", "M. Lee") {
				t.Errorf("pivot %v not consistent with φ1", prog)
			}
			if !prog.Consistent("Smith, James", "J. Smith") {
				t.Errorf("pivot %v not consistent with φ2", prog)
			}
		})
	}
}

func TestSearchPivotGlobalThresholdUpdates(t *testing.T) {
	// Example 5.3: after finding G1's pivot (support 2), the global
	// lower bound of G2 ∈ ℓ is raised to 2.
	c := example51Context(t)
	_, ok := c.SearchPivot(c.Graphs[0], 0, SearchOpts{LocalTerm: true, GlobalTerm: true})
	if !ok {
		t.Fatal("SearchPivot found nothing")
	}
	if c.lo[1] != 2 {
		t.Errorf("G2 lower bound = %d, want 2", c.lo[1])
	}
	if c.witness[1] == nil {
		t.Error("G2 should have a witness path")
	}
	// G3's bound stays 1: the pivot path of G1 is not in G3.
	if c.lo[2] != 1 {
		t.Errorf("G3 lower bound = %d, want 1", c.lo[2])
	}
}

func TestSearchPivotSeedRequiresStrictImprovement(t *testing.T) {
	// Algorithm 7: with ℓmax seeded to τ = 2, G1's pivot (support 2)
	// must NOT be reported.
	c := example51Context(t)
	if _, ok := c.SearchPivot(c.Graphs[0], 2, SearchOpts{LocalTerm: true, GlobalTerm: true}); ok {
		t.Error("seeded search should fail when no path beats τ")
	}
	if _, ok := c.SearchPivot(c.Graphs[0], 1, SearchOpts{LocalTerm: true, GlobalTerm: true}); !ok {
		t.Error("seeded search with τ=1 should find the support-2 pivot")
	}
}

func TestSearchPivotMaxPathLen(t *testing.T) {
	// With θ = 1 only single-function paths are considered; the
	// whole-string constant path always exists, so search still
	// succeeds with support 1 for G1 (no other graph shares the
	// constant "M. Lee").
	c := example51Context(t)
	res, ok := c.SearchPivot(c.Graphs[0], 0, SearchOpts{MaxPathLen: 1})
	if !ok {
		t.Fatal("SearchPivot found nothing with θ=1")
	}
	if len(res.path) != 1 {
		t.Fatalf("path length = %d, want 1", len(res.path))
	}
}

func TestUpperBoundsExample63(t *testing.T) {
	// Example 6.3: the upper bounds of G1, G2, G3 initialize to 2, 2, 1:
	// position 2 of "M. Lee" (the '.') can only come from constants,
	// which G3 = "Mary Lee" lacks, and every position of "Mary Lee"
	// containing 'a' is produced only by labels unique to G3.
	c := example51Context(t)
	if c.up[0] != 2 {
		t.Errorf("Gup(G1) = %d, want 2", c.up[0])
	}
	if c.up[1] != 2 {
		t.Errorf("Gup(G2) = %d, want 2", c.up[1])
	}
	if c.up[2] != 1 {
		t.Errorf("Gup(G3) = %d, want 1", c.up[2])
	}
}

func TestUpperBoundDominatesPivotSupport(t *testing.T) {
	// Lemma 6.2: Gup is an upper bound of the pivot support.
	c := example51Context(t)
	for gi, g := range c.Graphs {
		res, ok := c.SearchPivot(g, 0, SearchOpts{})
		if !ok {
			t.Fatalf("G%d: no pivot", gi+1)
		}
		if res.count > c.up[gi] {
			t.Errorf("G%d: pivot support %d exceeds upper bound %d", gi+1, res.count, c.up[gi])
		}
	}
}

func TestSearchPivotAfterRemoval(t *testing.T) {
	// Removing G2 leaves G1's pivot with support 1.
	c := example51Context(t)
	c.remove(1)
	res, ok := c.SearchPivot(c.Graphs[0], 0, SearchOpts{})
	if !ok {
		t.Fatal("no pivot after removal")
	}
	if res.count != 1 {
		t.Errorf("pivot support = %d, want 1 after removing G2", res.count)
	}
	for _, g := range res.support {
		if g == 1 {
			t.Error("support contains the removed graph")
		}
	}
}

func TestPathSupportRevalidation(t *testing.T) {
	c := example51Context(t)
	res, _ := c.SearchPivot(c.Graphs[0], 0, SearchOpts{LocalTerm: true, GlobalTerm: true})
	if got := len(c.pathSupport(res.path)); got != 2 {
		t.Fatalf("pathSupport = %d, want 2", got)
	}
	c.remove(1)
	if got := len(c.pathSupport(res.path)); got != 1 {
		t.Fatalf("pathSupport after removal = %d, want 1", got)
	}
}

func TestPrepareSkipsUnbuildableReps(t *testing.T) {
	c := newContext("sig", []Rep{
		{S: "", T: "x", Ext: 0},
		{S: "ab", T: "b", Ext: 1},
	})
	c.Prepare(tgraph.Options{})
	if c.AliveCount() != 1 {
		t.Errorf("AliveCount = %d, want 1", c.AliveCount())
	}
	if c.Graphs[0] != nil {
		t.Error("graph for empty string should be nil")
	}
}
