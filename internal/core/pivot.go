package core

import "github.com/goldrec/goldrec/internal/tgraph"

// SearchOpts controls the pivot-path search.
type SearchOpts struct {
	// MaxPathLen is θ, the maximum number of string functions in a
	// path (Section 8.2 uses 6). 0 means the default of 6.
	MaxPathLen int
	// LocalTerm enables the local threshold-based early termination of
	// Section 5.2: a branch is extended only when its list is strictly
	// longer than the best transformation path found so far.
	LocalTerm bool
	// GlobalTerm enables the global threshold-based early termination:
	// completed paths raise the lower bounds of every graph in their
	// support, and branches below the searched graph's own bound are
	// skipped.
	GlobalTerm bool
	// MaxSteps bounds the number of DFS extensions per search
	// (0 = unlimited). It is an escape hatch for the prune-free
	// OneShot mode on long strings; the reproduction experiments leave
	// it unset so the Figure 9 comparison stays honest.
	MaxSteps int
}

// DefaultMaxPathLen is the paper's θ = 6.
const DefaultMaxPathLen = 6

func (o SearchOpts) maxPathLen() int {
	if o.MaxPathLen <= 0 {
		return DefaultMaxPathLen
	}
	return o.MaxPathLen
}

// searchResult is the outcome of one SearchPivot invocation.
type searchResult struct {
	path    []tgraph.LabelID
	support []int32 // spanning graphs, sorted
	count   int     // len(support)
}

type searcher struct {
	ctx  *Context
	g    *tgraph.Graph
	opts SearchOpts

	best      searchResult
	seedCount int // |ℓmax| seed of Algorithm 7 (τ); best must exceed it
	maxLen    int
	steps     int
}

// SearchPivot finds the pivot path of graph g: the transformation path in
// g shared by the largest number of alive graphs in the context
// (Algorithm 3, with Algorithm 4's early terminations switchable and the
// seeded ℓmax of Algorithm 7). It returns ok=false when no path with
// support greater than seedCount exists (the incremental algorithm then
// tightens g's upper bound to τ).
func (c *Context) SearchPivot(g *tgraph.Graph, seedCount int, opts SearchOpts) (searchResult, bool) {
	s := &searcher{
		ctx:       c,
		g:         g,
		opts:      opts,
		seedCount: seedCount,
		maxLen:    opts.maxPathLen(),
	}
	s.best.count = seedCount
	s.dfs(1, nil, c.seedList())
	if s.best.path == nil {
		return searchResult{}, false
	}
	return s.best, true
}

func (s *searcher) dfs(node int, path []tgraph.LabelID, l []Posting) {
	s.steps++
	if s.opts.MaxSteps > 0 && s.steps > s.opts.MaxSteps {
		return
	}
	if node == s.g.FinalNode() {
		// ρ is a transformation path; its support is the set of graphs
		// it spans (Line 2-5 of Algorithm 3).
		support := spanningGraphs(l, s.ctx.Graphs)
		n := len(support)
		if s.opts.GlobalTerm {
			// Algorithm 4: raise the global lower bounds of every
			// graph containing ρ, remembering the witness so the
			// incremental engine can re-validate after removals.
			for _, gid := range support {
				if s.ctx.lo[gid] < n {
					s.ctx.lo[gid] = n
					s.ctx.witness[gid] = append([]tgraph.LabelID(nil), path...)
					s.ctx.witnessGen[gid] = s.ctx.gen
				}
			}
		}
		if n > s.best.count {
			s.best.count = n
			s.best.path = append([]tgraph.LabelID(nil), path...)
			s.best.support = append([]int32(nil), support...)
		}
		return
	}
	if len(path) >= s.maxLen {
		return
	}
	for _, e := range s.g.Adj[node] {
		for _, f := range e.Labels {
			l2 := intersect(l, s.ctx.Index.List(f), s.ctx.alive)
			cnt := distinctGraphs(l2)
			if cnt == 0 {
				continue
			}
			if s.opts.LocalTerm && cnt <= s.best.count {
				continue
			}
			if s.opts.GlobalTerm && cnt < s.ctx.lo[s.g.ID] {
				continue
			}
			path = append(path, f)
			s.dfs(e.To, path, l2)
			path = path[:len(path)-1]
		}
	}
}
