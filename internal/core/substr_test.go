package core

import (
	"fmt"
	"testing"
	"unicode/utf8"
)

func naiveCountSubstrings(m map[string]int, s string, maxLen int) {
	r := []rune(s)
	for i := 0; i < len(r); i++ {
		for j := i + 1; j <= len(r) && j-i <= maxLen; j++ {
			m[string(r[i:j])]++
		}
	}
}

func TestCountSubstringsMatchesNaive(t *testing.T) {
	inputs := []string{
		"", "a", "Mary Lee", "Smith, James", "née Müller", "日本語テスト",
		"mixed ascii and ünïcode tails", "aaaaaaaaaaaaaaaaaaaaaaaa",
	}
	for _, s := range inputs {
		for _, maxLen := range []int{1, 3, 16} {
			want := map[string]int{}
			naiveCountSubstrings(want, s, maxLen)
			got := map[string]int{}
			countSubstrings(got, s, maxLen)
			if len(got) != len(want) {
				t.Fatalf("countSubstrings(%q, %d): %d keys, want %d", s, maxLen, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("countSubstrings(%q, %d)[%q] = %d, want %d", s, maxLen, k, got[k], n)
				}
			}
		}
	}
}

// TestCountSubstringsASCIIAllocs gates the hot path: counting an ASCII
// string into a pre-warmed map must not allocate at all — the string
// slices share the input's bytes and the pooled scratch never engages.
func TestCountSubstringsASCIIAllocs(t *testing.T) {
	const s = "Smith, James A. 42nd"
	m := map[string]int{}
	countSubstrings(m, s, defaultMaxConstLen) // size the map
	allocs := testing.AllocsPerRun(100, func() {
		countSubstrings(m, s, defaultMaxConstLen)
	})
	if allocs != 0 {
		t.Errorf("ASCII countSubstrings allocated %.1f per run, want 0", allocs)
	}
}

// TestCountSubstringsUnicodeScratchPooled gates the non-ASCII path's
// decode buffer: with a pre-warmed map and pool, the only remaining
// allocations are the map-key strings themselves, bounded by the
// substring count — the per-call []rune(s) conversion must be gone.
func TestCountSubstringsUnicodeScratchPooled(t *testing.T) {
	const s = "Müller, Ænna 42nd"
	m := map[string]int{}
	countSubstrings(m, s, defaultMaxConstLen)
	// One key-string allocation per counted substring (duplicates
	// included) is inherent to map[string]int with rune-sliced keys;
	// the gate is that nothing else — in particular the per-call
	// []rune(s) decode — allocates on top.
	n := utf8.RuneCountInString(s)
	counted := 0
	for i := 0; i < n; i++ {
		c := n - i
		if c > defaultMaxConstLen {
			c = defaultMaxConstLen
		}
		counted += c
	}
	allocs := testing.AllocsPerRun(100, func() {
		countSubstrings(m, s, defaultMaxConstLen)
	})
	if int(allocs) > counted {
		t.Errorf("unicode countSubstrings allocated %.1f per run, want <= %d (key strings only)", allocs, counted)
	}
}

func BenchmarkCountSubstrings(b *testing.B) {
	cases := []struct{ name, s string }{
		{"ascii", "Smith, James A. 42nd Street apt 7"},
		{"unicode", "Müller, Ænna 42nd Straße Bür 7"},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/len=%d", tc.name, len(tc.s)), func(b *testing.B) {
			m := map[string]int{}
			countSubstrings(m, tc.s, defaultMaxConstLen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				countSubstrings(m, tc.s, defaultMaxConstLen)
			}
		})
	}
}
