// Package structure implements the replacement-structure refinement of
// Section 7.2: each side of a replacement is mapped to a sequence of
// terms — maximal runs of the four regex classes collapse to one term,
// every other character is a single-character term — and replacements are
// grouped only when both sides' structures match (Definition 4).
package structure

import (
	"strings"

	"github.com/goldrec/goldrec/internal/dsl"
)

// Signature returns Struc(s): the unique character-class decomposition of
// s. Runs of digits, lowercase, capitals and whitespace collapse to the
// codes 'd', 'l', 'C', 'b'; any other character is emitted literally as a
// single-character term (escaped so that signatures stay unambiguous).
func Signature(s string) string {
	var b strings.Builder
	var prev dsl.Term
	prevSet := false
	for _, r := range s {
		cls := dsl.ClassOf(r)
		if cls == dsl.TermPunct {
			// Single-character term: escape the escape and class codes
			// so "d" the literal never collides with a digit run.
			b.WriteByte('\\')
			b.WriteRune(r)
			prevSet = false
			continue
		}
		if prevSet && cls == prev {
			continue
		}
		b.WriteByte(cls.Sig())
		prev, prevSet = cls, true
	}
	return b.String()
}

// PairSignature returns the structure of a replacement lhs→rhs
// (Definition 4: two replacements are structurally equivalent iff both
// sides' signatures match).
func PairSignature(lhs, rhs string) string {
	return Signature(lhs) + "\x00" + Signature(rhs)
}

// Partition groups the indexes 0..n-1 by the signature that sigOf
// reports, preserving first-seen order of groups and index order within a
// group. It is the first-phase partition of Section 7.2 that the
// transformation-based grouping then refines.
func Partition(n int, sigOf func(int) string) [][]int {
	order := make([]string, 0)
	bySig := make(map[string][]int)
	for i := 0; i < n; i++ {
		sig := sigOf(i)
		if _, ok := bySig[sig]; !ok {
			order = append(order, sig)
		}
		bySig[sig] = append(bySig[sig], i)
	}
	out := make([][]int, 0, len(order))
	for _, sig := range order {
		out = append(out, bySig[sig])
	}
	return out
}
