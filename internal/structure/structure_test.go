package structure

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignaturePaperExamples(t *testing.T) {
	// Section 7.2: Struc("9") = Td and Struc("9th") = TdTl, so
	// 9→9th and 3→3rd share the structure Td→TdTl.
	cases := []struct {
		in, want string
	}{
		{"9", "d"},
		{"9th", "dl"},
		{"3rd", "dl"},
		{"", ""},
		{"Lee, Mary", `Cl\,bCl`},
		{"M. Lee", `C\.bCl`},
		{"  ", "b"},
		{"a-b", `l\-l`},
		{"ABc12", "Cld"},
	}
	for _, c := range cases {
		if got := Signature(c.in); got != c.want {
			t.Errorf("Signature(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPairSignatureEquivalence(t *testing.T) {
	// 9→9th and 3→3rd are structurally equivalent (Section 7.2).
	if PairSignature("9", "9th") != PairSignature("3", "3rd") {
		t.Error("9→9th and 3→3rd should be structurally equivalent")
	}
	// Street→St and Avenue→Ave are structurally equivalent.
	if PairSignature("Street", "St") != PairSignature("Avenue", "Ave") {
		t.Error("Street→St and Avenue→Ave should be structurally equivalent")
	}
	// Direction matters.
	if PairSignature("9", "9th") == PairSignature("9th", "9") {
		t.Error("pair signatures must be direction sensitive")
	}
	// "Wisconsin"→"WI" vs "California"→"CA": both lC→C... wait,
	// Wisconsin is C+l, WI is C run.
	if PairSignature("Wisconsin", "WI") != PairSignature("California", "CA") {
		t.Error("state abbreviations should be structurally equivalent")
	}
}

func TestSignatureEscaping(t *testing.T) {
	// A literal 'd' character never appears (lowercase 'd' is part of
	// an 'l' run), but literal punctuation that collides with class
	// codes must be escaped.
	if Signature("5") == Signature(".") {
		t.Error("digit run and literal '.' must differ")
	}
	if Signature("\\") != `\\` {
		t.Errorf("backslash should be escaped, got %q", Signature("\\"))
	}
	if Signature("a.b") == Signature("ab.") {
		t.Error("punctuation position must be significant")
	}
}

func TestSignatureDeterministicAndIdempotentClasses(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []rune("abAB01 .,-x9Z")
		s := make([]rune, int(n%25))
		for i := range s {
			s[i] = alphabet[r.Intn(len(alphabet))]
		}
		sig := Signature(string(s))
		// Signature is stable and strings with identical rune-class run
		// sequences share it: doubling every run member preserves it.
		var doubled []rune
		for _, c := range s {
			doubled = append(doubled, c)
			if c != '.' && c != ',' && c != '-' { // single-char terms must not double
				doubled = append(doubled, c)
			}
		}
		return Signature(string(doubled)) == sig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartition(t *testing.T) {
	sigs := []string{"a", "b", "a", "c", "b", "a"}
	groups := Partition(len(sigs), func(i int) string { return sigs[i] })
	want := [][]int{{0, 2, 5}, {1, 4}, {3}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
			}
		}
	}
}

func TestPartitionEmpty(t *testing.T) {
	if groups := Partition(0, func(int) string { return "" }); len(groups) != 0 {
		t.Errorf("empty partition = %v", groups)
	}
}
