package events

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/goldrec/goldrec/internal/obs"
	"github.com/goldrec/goldrec/internal/store"
)

func jsonUnmarshal(line []byte, v any) error { return json.Unmarshal(line, v) }

func withTestRequestInfo(ctx context.Context, reqID, traceID string) context.Context {
	return obs.WithRequest(ctx, obs.RequestInfo{ID: reqID, TraceID: traceID})
}

func openFS(t *testing.T, dir string) *store.FS {
	t.Helper()
	fs, err := store.OpenFS(dir, store.FSOptions{NoSync: true})
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	return fs
}

func openLog(t *testing.T, st store.Store, opts Options) *Log {
	t.Helper()
	opts.Store = st
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func emitN(t *testing.T, l *Log, tenant string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		l.Emit(context.Background(), Event{
			Type:    TypeDecisionRecorded,
			Tenant:  tenant,
			Session: fmt.Sprintf("s-%d", i),
		})
	}
}

func TestEmitAssignsMonotonicSeqPerTenant(t *testing.T) {
	l := openLog(t, nil, Options{})
	for i := 1; i <= 3; i++ {
		if got := l.Emit(context.Background(), Event{Type: TypeGroupReady, Tenant: "tn_a1"}); got != uint64(i) {
			t.Fatalf("acme seq = %d, want %d", got, i)
		}
	}
	if got := l.Emit(context.Background(), Event{Type: TypeGroupReady, Tenant: "tn_b2"}); got != 1 {
		t.Fatalf("zeta seq = %d, want 1 (streams are independent)", got)
	}
	if got := l.LastSeq("tn_a1"); got != 3 {
		t.Fatalf("LastSeq(acme) = %d, want 3", got)
	}
}

func TestSubscribeReceivesInOrder(t *testing.T) {
	l := openLog(t, nil, Options{})
	sub, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	emitN(t, l, "tn_a1", 5)
	for i := 1; i <= 5; i++ {
		e := <-sub.C()
		if e.Seq != uint64(i) {
			t.Fatalf("event %d: seq = %d, want %d", i, e.Seq, i)
		}
		if e.Type != TypeDecisionRecorded {
			t.Fatalf("event %d: type = %q", i, e.Type)
		}
	}
}

func TestForeignTenantSeesNothing(t *testing.T) {
	l := openLog(t, nil, Options{})
	sub, err := l.Subscribe("tn_ffff")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	emitN(t, l, "tn_a1", 3)
	select {
	case e := <-sub.C():
		t.Fatalf("foreign subscriber received %+v", e)
	case <-time.After(20 * time.Millisecond):
	}
	if got, err := l.EventsSince("tn_ffff", 0, 0); err != nil || len(got) != 0 {
		t.Fatalf("EventsSince(other) = %d events, err %v", len(got), err)
	}
}

func TestSlowSubscriberGetsGapMarker(t *testing.T) {
	l := openLog(t, nil, Options{SubscriberBuffer: 2})
	sub, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	// Buffer 2: events 1-2 land, 3-5 drop while nobody reads.
	emitN(t, l, "tn_a1", 5)
	if e := <-sub.C(); e.Seq != 1 {
		t.Fatalf("first event seq = %d, want 1", e.Seq)
	}
	if e := <-sub.C(); e.Seq != 2 {
		t.Fatalf("second event seq = %d, want 2", e.Seq)
	}
	// Next emission must deliver the gap marker before the live event.
	l.Emit(context.Background(), Event{Type: TypeGroupReady, Tenant: "tn_a1"})
	gap := <-sub.C()
	if gap.Type != TypeGap {
		t.Fatalf("expected gap marker, got %+v", gap)
	}
	if from, to := gap.Data["from_seq"].(uint64), gap.Data["to_seq"].(uint64); from != 3 || to != 5 {
		t.Fatalf("gap range = [%d, %d], want [3, 5]", from, to)
	}
	if e := <-sub.C(); e.Seq != 6 || e.Type != TypeGroupReady {
		t.Fatalf("post-gap event = %+v, want seq 6", e)
	}
}

func TestSubscriberLimit(t *testing.T) {
	l := openLog(t, nil, Options{MaxSubscribers: 2})
	a, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Subscribe("tn_a1"); !errors.Is(err, ErrSubscriberLimit) {
		t.Fatalf("third Subscribe err = %v, want ErrSubscriberLimit", err)
	}
	// Other tenants have their own slots.
	c, err := l.Subscribe("tn_b2")
	if err != nil {
		t.Fatalf("other tenant Subscribe: %v", err)
	}
	c.Close()
	// Closing frees the slot.
	b.Close()
	d, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatalf("Subscribe after Close: %v", err)
	}
	d.Close()
}

func TestEventsSinceFromRing(t *testing.T) {
	l := openLog(t, nil, Options{})
	emitN(t, l, "tn_a1", 10)
	got, err := l.EventsSince("tn_a1", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 8 || got[2].Seq != 10 {
		t.Fatalf("EventsSince(7) = %v", seqs(got))
	}
	got, err = l.EventsSince("tn_a1", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Seq != 1 {
		t.Fatalf("EventsSince(0, limit 4) = %v", seqs(got))
	}
	if got, _ := l.EventsSince("tn_a1", 10, 0); len(got) != 0 {
		t.Fatalf("EventsSince(tip) = %v, want empty", seqs(got))
	}
}

func TestEventsSinceFallsBackToDisk(t *testing.T) {
	fs := openFS(t, t.TempDir())
	// Ring of 4: events 1-6 emitted, ring holds 3-6, 1-2 only on disk.
	l := openLog(t, fs, Options{RingSize: 4})
	emitN(t, l, "tn_a1", 6)
	l.Flush()
	got, err := l.EventsSince("tn_a1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("EventsSince(0) = %v, want 1..6", seqs(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("EventsSince(0) = %v, want 1..6", seqs(got))
		}
	}
	// Events still queued (not yet flushed) must show up too.
	emitN(t, l, "tn_a1", 2)
	got, err = l.EventsSince("tn_a1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[7].Seq != 8 {
		t.Fatalf("EventsSince(0) after unflushed emits = %v, want 1..8", seqs(got))
	}
}

func TestRestartResumesSeqAndHistory(t *testing.T) {
	dir := t.TempDir()
	fs := openFS(t, dir)
	l := openLog(t, fs, Options{})
	emitN(t, l, "tn_a1", 5)
	l.Close()
	fs.Close()

	fs2 := openFS(t, dir)
	l2 := openLog(t, fs2, Options{})
	if got := l2.LastSeq("tn_a1"); got != 5 {
		t.Fatalf("LastSeq after restart = %d, want 5", got)
	}
	if got := l2.Emit(context.Background(), Event{Type: TypeExportCreated, Tenant: "tn_a1"}); got != 6 {
		t.Fatalf("post-restart emit seq = %d, want 6", got)
	}
	got, err := l2.EventsSince("tn_a1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("history after restart = %v, want 1..6", seqs(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("history after restart = %v, want 1..6", seqs(got))
		}
	}
	if got[0].Session != "s-0" || got[5].Type != TypeExportCreated {
		t.Fatalf("replayed payloads corrupted: %+v", got)
	}
}

func TestTornTailDroppedOnRestart(t *testing.T) {
	dir := t.TempDir()
	fs := openFS(t, dir)
	l := openLog(t, fs, Options{})
	emitN(t, l, "tn_a1", 3)
	l.Close()
	fs.Close()

	path := filepath.Join(dir, "events", "tn_a1", "log.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"type":"decision.rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs2 := openFS(t, dir)
	l2 := openLog(t, fs2, Options{})
	if got := l2.LastSeq("tn_a1"); got != 3 {
		t.Fatalf("LastSeq after torn tail = %d, want 3", got)
	}
	got, err := l2.EventsSince("tn_a1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("events after torn tail = %v, want 1..3", seqs(got))
	}
}

func TestOpenModeStreamPersists(t *testing.T) {
	dir := t.TempDir()
	fs := openFS(t, dir)
	l := openLog(t, fs, Options{})
	l.Emit(context.Background(), Event{Type: TypeTenantCreated, Data: map[string]any{"tenant_id": "tn_a1"}})
	l.Close()
	fs.Close()

	fs2 := openFS(t, dir)
	l2 := openLog(t, fs2, Options{})
	if got := l2.LastSeq(""); got != 1 {
		t.Fatalf("open-mode LastSeq after restart = %d, want 1", got)
	}
}

func TestSizeCompaction(t *testing.T) {
	fs := openFS(t, t.TempDir())
	pad := strings.Repeat("x", 100)
	l := openLog(t, fs, Options{MaxLogBytes: 2048, Retention: -1})
	for i := 0; i < 40; i++ {
		l.Emit(context.Background(), Event{
			Type:   TypeDecisionRecorded,
			Tenant: "tn_a1",
			Data:   map[string]any{"pad": pad},
		})
		l.Flush() // flush per event so compaction triggers mid-run
	}
	st := l.stream("tn_a1")
	st.mu.Lock()
	size := st.logBytes
	st.mu.Unlock()
	if size > 2048 {
		t.Fatalf("log size %d exceeds cap after compaction", size)
	}
	// The retained tail must be a contiguous suffix ending at the tip.
	var seen []uint64
	err := fs.ReplayEvents("tn_a1", func(line []byte) error {
		var e Event
		if err := jsonUnmarshal(line, &e); err != nil {
			return err
		}
		seen = append(seen, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || seen[len(seen)-1] != 40 {
		t.Fatalf("compacted log tail = %v, want suffix ending in 40", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("compacted log not contiguous: %v", seen)
		}
	}
}

func TestAgeCompaction(t *testing.T) {
	fs := openFS(t, t.TempDir())
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := &now
	l := openLog(t, fs, Options{
		Retention: time.Hour,
		Now:       func() time.Time { return *clock },
	})
	emitN(t, l, "tn_a1", 3)
	l.Flush()
	// Jump past the retention window; the next flush pass compacts.
	later := now.Add(2 * time.Hour)
	clock = &later
	l.Emit(context.Background(), Event{Type: TypeExportCreated, Tenant: "tn_a1"})
	l.Flush()
	var seen []uint64
	err := fs.ReplayEvents("tn_a1", func(line []byte) error {
		var e Event
		if err := jsonUnmarshal(line, &e); err != nil {
			return err
		}
		seen = append(seen, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 4 {
		t.Fatalf("log after age compaction = %v, want [4]", seen)
	}
	// Sequence numbering survives compaction across a restart.
	l.Close()
	fs.Close()
}

func TestDeleteTenantPurges(t *testing.T) {
	dir := t.TempDir()
	fs := openFS(t, dir)
	l := openLog(t, fs, Options{})
	emitN(t, l, "tn_a1", 3)
	l.Flush()
	sub, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.DeleteTenant("tn_a1"); err != nil {
		t.Fatalf("DeleteTenant: %v", err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscriber channel still open after DeleteTenant")
	}
	if got := l.LastSeq("tn_a1"); got != 0 {
		t.Fatalf("LastSeq after delete = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "events", "tn_a1")); !os.IsNotExist(err) {
		t.Fatalf("event dir survives delete: %v", err)
	}
}

func TestCloseClosesSubscribers(t *testing.T) {
	l := openLog(t, nil, Options{})
	sub, err := l.Subscribe("tn_a1")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscriber channel still open after Log.Close")
	}
	if got := l.Emit(context.Background(), Event{Type: TypeGroupReady, Tenant: "tn_a1"}); got == 0 {
		// Emission after Close still assigns (in-memory) but nothing is
		// flushed; a zero here would also be acceptable. The real
		// contract is just: no panic, no hang.
		t.Log("emit after close returned 0")
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	if got := l.Emit(context.Background(), Event{Type: TypeGroupReady}); got != 0 {
		t.Fatalf("nil Emit = %d", got)
	}
	if got := l.LastSeq("x"); got != 0 {
		t.Fatalf("nil LastSeq = %d", got)
	}
	if got, err := l.EventsSince("x", 0, 0); got != nil || err != nil {
		t.Fatalf("nil EventsSince = %v, %v", got, err)
	}
	if _, err := l.Subscribe("x"); err == nil {
		t.Fatal("nil Subscribe should error")
	}
	if err := l.DeleteTenant("x"); err != nil {
		t.Fatalf("nil DeleteTenant = %v", err)
	}
	l.Flush()
	if err := l.Close(); err != nil {
		t.Fatalf("nil Close = %v", err)
	}
}

func TestEmitFillsRequestAndTraceIDs(t *testing.T) {
	l := openLog(t, nil, Options{})
	ctx := withTestRequestInfo(context.Background(), "req-1", "trace-1")
	l.Emit(ctx, Event{Type: TypeDatasetUploaded, Tenant: "tn_a1"})
	got, err := l.EventsSince("tn_a1", 0, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("EventsSince = %v, %v", got, err)
	}
	if got[0].RequestID != "req-1" || got[0].TraceID != "trace-1" {
		t.Fatalf("ids not stamped: %+v", got[0])
	}
}

func seqs(events []Event) []uint64 {
	out := make([]uint64, len(events))
	for i, e := range events {
		out[i] = e.Seq
	}
	return out
}
