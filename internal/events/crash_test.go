package events

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/goldrec/goldrec/internal/store"
)

// TestCrashReplayByteIdentical kills the process between every single
// event — reopening the store and the log each time, never calling
// Close, and periodically leaving a torn half-record at a log's tail —
// and demands the surviving durable logs be byte-for-byte identical to
// an uninterrupted run. Runs at 1 and 16 tenants so recovery is
// provably independent of how the streams are spread across files.
func TestCrashReplayByteIdentical(t *testing.T) {
	for _, tenants := range []int{1, 16} {
		t.Run(fmt.Sprintf("tenants=%d", tenants), func(t *testing.T) {
			const perTenant = 6
			total := tenants * perTenant
			ids := make([]string, tenants)
			for i := range ids {
				ids[i] = fmt.Sprintf("tn_%02x", i)
			}
			// Fixed clock and fully literal fields: the only thing
			// allowed to differ between runs is nothing.
			now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
			mkEvent := func(i int) Event {
				return Event{
					Type:      TypeDecisionRecorded,
					Tenant:    ids[i%tenants],
					Actor:     "admin",
					RequestID: fmt.Sprintf("req_%04d", i),
					Dataset:   "ds_0abc",
					Session:   "cs_0abc",
					Data:      map[string]any{"group_id": i},
				}
			}
			open := func(dir string) (*store.FS, *Log) {
				st, err := store.OpenFS(dir, store.FSOptions{})
				if err != nil {
					t.Fatal(err)
				}
				l, err := Open(Options{Store: st, Now: func() time.Time { return now }})
				if err != nil {
					t.Fatal(err)
				}
				return st, l
			}
			ctx := context.Background()

			// Control: one process lifetime, clean close.
			control := t.TempDir()
			st, l := open(control)
			for i := 0; i < total; i++ {
				l.Emit(ctx, mkEvent(i))
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			st.Close()

			// Crashy: one process lifetime PER EVENT. Flush makes the
			// event durable (the acknowledgement point), then the store
			// is yanked without closing the log — abandoned flusher and
			// all — exactly like a kill -9 after the append.
			crashy := t.TempDir()
			for i := 0; i < total; i++ {
				st, l := open(crashy)
				l.Emit(ctx, mkEvent(i))
				l.Flush()
				// Every few crashes, also tear the tail of the log the
				// NEXT event will append to: recovery must drop the torn
				// half-record and the next append must repair the file.
				victim := ids[(i+1)%tenants]
				if i%3 == 1 && i+1 < total && i+1 >= tenants {
					path := filepath.Join(crashy, "events", victim, "log.jsonl")
					f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.WriteString(`{"seq":9999,"type":"decision.`); err != nil {
						t.Fatal(err)
					}
					f.Close()
				}
				st.Close()
			}

			// A final clean incarnation: recovery must see every event,
			// contiguously, per tenant.
			st2, l2 := open(crashy)
			for ti, id := range ids {
				evs, err := l2.EventsSince(id, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(evs) != perTenant {
					t.Fatalf("tenant %s: replayed %d events, want %d", id, len(evs), perTenant)
				}
				for j, e := range evs {
					if e.Seq != uint64(j+1) {
						t.Fatalf("tenant %s: seq %d at position %d", id, e.Seq, j)
					}
					if want := fmt.Sprintf("req_%04d", j*tenants+ti); e.RequestID != want {
						t.Fatalf("tenant %s: event %d request_id %q, want %q", id, j, e.RequestID, want)
					}
				}
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			st2.Close()

			// And the durable bytes themselves are identical to the
			// uninterrupted run's.
			for _, id := range ids {
				want, err := os.ReadFile(filepath.Join(control, "events", id, "log.jsonl"))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(crashy, "events", id, "log.jsonl"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("tenant %s: crash-run log differs from control\ncontrol:\n%s\ncrashy:\n%s", id, want, got)
				}
			}
		})
	}
}
