// Package events is goldrecd's audit/event subsystem: a bounded
// in-process publish/subscribe bus paired with a durable per-tenant
// append-only audit log.
//
// Every mutating operation the service acknowledges emits one Event
// into the owning tenant's stream ("" is the open-mode stream). An
// event carries a per-tenant monotonic sequence number, the event type
// from the stable taxonomy below, the acting api-key id, and the
// request and trace ids of the request that caused it — so the audit
// log cross-links to the request log and the flight recorder.
//
// Delivery has three tiers, cheapest first:
//
//   - Live subscribers (SSE streams) receive events over a bounded
//     per-subscriber channel. A slow consumer never blocks the emitter:
//     overflowing events are dropped and the subscriber receives one
//     synthetic "events.gap" marker naming the dropped range, so it
//     can re-sync from the durable log.
//   - A fixed-size in-memory ring per tenant serves catch-up reads
//     (EventsSince) for recent sequence numbers without touching disk.
//   - The durable log (store.AppendEvents, JSONL, torn-tail-tolerant
//     replay) serves resume from arbitrary history. Appends are
//     batched on a background flusher — one write and at most one
//     fsync per batch — so emission stays off the caller's hot path.
//     The audit log is observability, not the system of record (the
//     session WAL is): a failed append is counted and logged, never
//     surfaced to the request that emitted the event.
//
// The log is snapshot-free and bounded by retention compaction: when a
// tenant's log exceeds its size cap or its oldest event outlives the
// retention window, the flusher rewrites the log keeping only the
// retained tail (store.RewriteEvents, atomic).
package events

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/goldrec/goldrec/internal/obs"
	"github.com/goldrec/goldrec/internal/obs/trace"
	"github.com/goldrec/goldrec/internal/store"
)

// The stable event taxonomy. These strings are API surface: clients
// branch on them, and the durable log replays them across versions —
// never rename.
const (
	TypeDatasetUploaded  = "dataset.uploaded"
	TypeSessionOpened    = "session.opened"
	TypeGroupReady       = "group.ready"
	TypeDecisionRecorded = "decision.recorded"
	TypeBatchApplied     = "batch.applied"
	TypeExportCreated    = "export.created"
	TypeSessionCompacted = "session.compacted"
	TypeTenantCreated    = "tenant.created"
	TypeTenantDeleted    = "tenant.deleted"
	TypeLibraryTaught    = "library.taught"
	TypeLibraryPurged    = "library.purged"

	// TypeGap is the synthetic slow-consumer marker: a subscriber that
	// could not keep up receives one gap event naming the sequence range
	// it missed. Gap events carry Seq 0, are never written to the
	// durable log, and are not part of the emit taxonomy.
	TypeGap = "events.gap"
)

// ErrSubscriberLimit rejects a Subscribe call when the tenant's
// bounded subscriber slots are all taken.
var ErrSubscriberLimit = errors.New("events: subscriber limit reached")

// maxFlushBacklog bounds one stream's queue of events awaiting durable
// append. The flusher normally drains within one batch; only a store
// stuck slower than the emit rate grows the queue, and at the cap the
// oldest queued event is shed (counted as flush_backlog) so memory
// stays bounded.
const maxFlushBacklog = 8192

// Event is one audit-log entry. Seq is monotonic per tenant stream and
// assigned by Emit; everything else is the emitter's statement of what
// happened.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Tenant is the stream the event belongs to ("" = the open-mode /
	// admin stream). Omitted from JSON when empty.
	Tenant string `json:"tenant,omitempty"`
	// Actor identifies who caused the event: the short api-key id that
	// authenticated the request, "admin" for the bootstrap admin key,
	// "" in open mode.
	Actor     string `json:"actor,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// Dataset and Session address the subject resources, when any.
	Dataset string `json:"dataset,omitempty"`
	Session string `json:"session,omitempty"`
	// Data carries type-specific detail (group id, decision, counts...).
	Data map[string]any `json:"data,omitempty"`
}

// Options configure a Log.
type Options struct {
	// Store persists the per-tenant logs (nil or store.Null = in-memory
	// only: live streams and ring catch-up still work, nothing survives
	// a restart).
	Store store.Store
	// Retention is the age cap: events older than this are dropped at
	// the next compaction (0 = 7 days; negative = no age cap).
	Retention time.Duration
	// MaxLogBytes caps one tenant's durable log; exceeding it triggers
	// compaction down to half the cap (0 = 8 MiB).
	MaxLogBytes int64
	// RingSize is the per-tenant in-memory catch-up window in events
	// (0 = 1024).
	RingSize int
	// MaxSubscribers bounds concurrent live subscribers per tenant
	// (0 = 64).
	MaxSubscribers int
	// SubscriberBuffer is each subscriber's channel capacity; a
	// consumer this far behind starts dropping with a gap marker
	// (0 = 256).
	SubscriberBuffer int
	// FlushDelay is how long the flusher coalesces after a kick before
	// draining queued appends — the group-commit window: a burst of
	// emissions lands as one write and one fsync, and the emitter's
	// hot path is never followed by an immediate encode+append wake.
	// Live subscribers are unaffected (fan-out happens in Emit); only
	// durability lags by at most this much (0 = 2ms; negative = flush
	// immediately, for tests that need a tight rendezvous).
	FlushDelay time.Duration
	// Metrics receives the bus's instrumentation (nil = none).
	Metrics *obs.Registry
	// Logf, when set, receives one line per notable failure.
	Logf func(format string, args ...any)
	// Now substitutes time in tests (nil = wall clock).
	Now func() time.Time
}

// Log is the event bus plus its durable per-tenant audit logs. The nil
// *Log is valid and inert: every method no-ops, so callers wire events
// through unconditionally and pay nothing when the feature is off.
type Log struct {
	opts       Options
	store      store.Store
	persistent bool

	emitted     *obs.Vec // counter: type
	dropped     *obs.Vec // counter: reason
	subscribers *obs.Gauge

	mu      sync.Mutex
	streams map[string]*stream
	closed  bool

	// flushMu serializes whole-log flush/compaction passes so batches
	// reach the store in emission order even when a synchronous Flush
	// races the background flusher.
	flushMu sync.Mutex
	kick    chan struct{}
	stop    chan struct{}
	done    sync.WaitGroup
}

// stream is one tenant's slice of the bus. All fields are guarded by
// mu; the ring is a fixed circular buffer.
type stream struct {
	tenant  string
	ringCap int

	mu        sync.Mutex
	seq       uint64
	ring      []Event
	ringStart int
	subs      map[*Subscriber]struct{}
	// queue holds emitted events awaiting durable append (bounded at
	// ring size; overflow drops oldest, counted as flush_backlog).
	queue []Event
	// logBytes tracks the durable log's size for the compaction
	// trigger; oldest is the time of its first record.
	logBytes int64
	oldest   time.Time
}

// Open builds the Log and, with a persistent store, recovers every
// tenant stream: the log tail repopulates the in-memory ring and the
// last sequence number, so emission and Last-Event-ID resume continue
// exactly where the previous process stopped.
func Open(opts Options) (*Log, error) {
	if opts.Retention == 0 {
		opts.Retention = 7 * 24 * time.Hour
	}
	if opts.MaxLogBytes <= 0 {
		opts.MaxLogBytes = 8 << 20
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 1024
	}
	if opts.MaxSubscribers <= 0 {
		opts.MaxSubscribers = 64
	}
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = 256
	}
	if opts.FlushDelay == 0 {
		opts.FlushDelay = 2 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Store == nil {
		opts.Store = store.Null{}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Noop()
	}
	_, null := opts.Store.(store.Null)
	l := &Log{
		opts:       opts,
		store:      opts.Store,
		persistent: !null,
		emitted: reg.NewCounter("goldrec_events_emitted_total",
			"Audit events emitted, by taxonomy type.", "type"),
		dropped: reg.NewCounter("goldrec_events_dropped_total",
			"Audit events dropped, by reason: slow_subscriber (live delivery only; the durable log kept them), flush_backlog (durable append queue overflowed), append_failure (store rejected a batch).", "reason"),
		subscribers: reg.NewGauge("goldrec_events_subscribers",
			"Live event-stream subscribers across all tenants.").Gauge(),
		streams: make(map[string]*stream),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	// Pre-touch the families so the exposition renders them (and
	// promlint -require finds them) before the first drop or subscribe.
	for _, reason := range []string{"slow_subscriber", "flush_backlog", "append_failure"} {
		l.dropped.Counter(reason)
	}
	l.subscribers.Set(0)
	if l.persistent {
		tenants, err := l.store.ListEventTenants()
		if err != nil {
			return nil, fmt.Errorf("events: listing tenants: %w", err)
		}
		for _, tn := range tenants {
			st := l.stream(tn)
			if err := l.recoverStream(st); err != nil {
				// A damaged log must not hold the whole service down:
				// start the stream from whatever prefix replayed.
				opts.Logf("events: recovering tenant %q log: %v", tn, err)
			}
		}
	}
	l.done.Add(1)
	go l.flusher()
	return l, nil
}

// recoverStream replays one tenant's durable log, seeding seq, the
// ring tail and the size/age accounting.
func (l *Log) recoverStream(st *stream) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return l.store.ReplayEvents(st.tenant, func(line []byte) error {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("events: corrupt record: %w", err)
		}
		if e.Seq > st.seq {
			st.seq = e.Seq
		}
		if st.oldest.IsZero() {
			st.oldest = e.Time
		}
		st.logBytes += int64(len(line)) + 1
		st.ringPush(e)
		return nil
	})
}

// stream returns (creating on first use) one tenant's stream.
func (l *Log) stream(tenant string) *stream {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.streams[tenant]
	if !ok {
		st = &stream{
			tenant:  tenant,
			ringCap: l.opts.RingSize,
			subs:    make(map[*Subscriber]struct{}),
		}
		l.streams[tenant] = st
	}
	return st
}

func (l *Log) streamList() []*stream {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*stream, 0, len(l.streams))
	for _, st := range l.streams {
		out = append(out, st)
	}
	return out
}

// ringPush appends to the circular catch-up buffer, evicting the
// oldest entry when full. Caller holds st.mu.
func (st *stream) ringPush(e Event) {
	// The ring is allocated lazily so idle tenants cost nothing.
	if st.ring == nil {
		if st.ringCap <= 0 {
			return
		}
		st.ring = make([]Event, 0, st.ringCap)
	}
	if len(st.ring) < cap(st.ring) {
		st.ring = append(st.ring, e)
		return
	}
	st.ring[st.ringStart] = e
	st.ringStart = (st.ringStart + 1) % len(st.ring)
}

// ringAt returns the i-th oldest ring entry. Caller holds st.mu.
func (st *stream) ringAt(i int) Event {
	return st.ring[(st.ringStart+i)%len(st.ring)]
}

// Emit publishes one event into its tenant's stream: assigns the next
// sequence number, stamps the time and the request/trace ids from ctx
// when the caller left them empty, fans out to live subscribers
// without blocking, and queues the durable append for the background
// flusher. It returns the assigned sequence number (0 on a nil or
// closed Log). Emit is the hot-path entry point: the synchronous work
// is a ring slot, a channel send per subscriber and a queue append —
// no disk, no marshaling.
func (l *Log) Emit(ctx context.Context, e Event) uint64 {
	if l == nil {
		return 0
	}
	_, sp := trace.StartSpan(ctx, "event_append")
	defer sp.End()
	sp.Annotate("type", e.Type)
	if e.Time.IsZero() {
		e.Time = l.opts.Now().UTC()
	}
	if info, ok := obs.RequestFrom(ctx); ok {
		if e.RequestID == "" {
			e.RequestID = info.ID
		}
		if e.TraceID == "" {
			e.TraceID = info.TraceID
		}
	}
	st := l.stream(e.Tenant)
	st.mu.Lock()
	st.seq++
	e.Seq = st.seq
	st.ringPush(e)
	for sub := range st.subs {
		sub.offer(l, e)
	}
	if l.persistent {
		if len(st.queue) >= maxFlushBacklog {
			// The flusher is hopelessly behind; shed the oldest queued
			// event rather than the newest (the ring and subscribers
			// already saw it — only its durable copy is lost).
			st.queue = st.queue[1:]
			l.dropped.Counter("flush_backlog").Inc()
		}
		st.queue = append(st.queue, e)
	}
	st.mu.Unlock()
	l.emitted.Counter(e.Type).Inc()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return e.Seq
}

// LastSeq returns the tenant stream's last assigned sequence number.
func (l *Log) LastSeq(tenant string) uint64 {
	if l == nil {
		return 0
	}
	st := l.stream(tenant)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// EventsSince returns the tenant's events with Seq > since, oldest
// first, up to limit (0 = no limit). Recent history is served from the
// in-memory ring; older sequence numbers fall back to replaying the
// durable log, merged with the ring so events still queued for their
// durable append are not missed.
func (l *Log) EventsSince(tenant string, since uint64, limit int) ([]Event, error) {
	if l == nil {
		return nil, nil
	}
	st := l.stream(tenant)
	st.mu.Lock()
	ringCovers := len(st.ring) == 0 || st.ringAt(0).Seq <= since+1
	if since >= st.seq {
		st.mu.Unlock()
		return nil, nil
	}
	if !l.persistent || ringCovers {
		out := st.ringSinceLocked(since, limit)
		st.mu.Unlock()
		return out, nil
	}
	st.mu.Unlock()

	// Disk path: the requested range predates the ring. Read the durable
	// prefix first, then top up from the ring (which also covers events
	// whose durable append is still queued). The two sources overlap;
	// sequence numbers dedupe them.
	var out []Event
	err := l.store.ReplayEvents(tenant, func(line []byte) error {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("events: corrupt record: %w", err)
		}
		if e.Seq > since {
			out = append(out, e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	last := since
	if n := len(out); n > 0 {
		last = out[n-1].Seq
	}
	st.mu.Lock()
	out = append(out, st.ringSinceLocked(last, 0)...)
	st.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// ringSinceLocked collects ring entries with Seq > since. Caller holds
// st.mu.
func (st *stream) ringSinceLocked(since uint64, limit int) []Event {
	n := len(st.ring)
	var out []Event
	for i := 0; i < n; i++ {
		e := st.ringAt(i)
		if e.Seq <= since {
			continue
		}
		out = append(out, e)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Subscriber is one live consumer of a tenant stream. Read events from
// C; the channel closes when the subscriber (or the Log) is closed.
type Subscriber struct {
	log *Log
	st  *stream
	ch  chan Event
	// dropped/gapFrom track a consumer that fell behind; touched only
	// under st.mu (fan-out is serialized per stream).
	dropped uint64
	gapFrom uint64
	closed  bool
}

// Subscribe registers a live consumer on the tenant's stream. The
// subscriber sees every event emitted after this call (plus a gap
// marker wherever it fell behind). Callers must Close it.
func (l *Log) Subscribe(tenant string) (*Subscriber, error) {
	if l == nil {
		return nil, errors.New("events: log disabled")
	}
	st := l.stream(tenant)
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.subs) >= l.opts.MaxSubscribers {
		return nil, fmt.Errorf("%w (max %d)", ErrSubscriberLimit, l.opts.MaxSubscribers)
	}
	sub := &Subscriber{log: l, st: st, ch: make(chan Event, l.opts.SubscriberBuffer)}
	st.subs[sub] = struct{}{}
	l.subscribers.Add(1)
	return sub, nil
}

// C is the subscriber's event channel.
func (sub *Subscriber) C() <-chan Event { return sub.ch }

// Close unregisters the subscriber and closes its channel. Idempotent.
func (sub *Subscriber) Close() {
	sub.st.mu.Lock()
	defer sub.st.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	delete(sub.st.subs, sub)
	close(sub.ch)
	sub.log.subscribers.Add(-1)
}

// offer delivers e to one subscriber without ever blocking the
// emitter. A full channel drops the event (counted) and remembers the
// gap; once space frees up the subscriber first receives a synthetic
// events.gap marker naming the missed range. Caller holds st.mu.
func (sub *Subscriber) offer(l *Log, e Event) {
	if sub.closed {
		return
	}
	if sub.dropped > 0 {
		gap := Event{
			Type:   TypeGap,
			Time:   e.Time,
			Tenant: e.Tenant,
			Data: map[string]any{
				"dropped":  sub.dropped,
				"from_seq": sub.gapFrom,
				"to_seq":   e.Seq - 1,
			},
		}
		select {
		case sub.ch <- gap:
			sub.dropped = 0
			sub.gapFrom = 0
		default:
			sub.dropped++
			l.dropped.Counter("slow_subscriber").Inc()
			return
		}
	}
	select {
	case sub.ch <- e:
	default:
		if sub.dropped == 0 {
			sub.gapFrom = e.Seq
		}
		sub.dropped++
		l.dropped.Counter("slow_subscriber").Inc()
	}
}

// Subscribers reports the tenant's live subscriber count.
func (l *Log) Subscribers(tenant string) int {
	if l == nil {
		return 0
	}
	st := l.stream(tenant)
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.subs)
}

// DeleteTenant purges one tenant's stream: live subscribers are
// closed, the ring and sequence counter reset, and the durable log
// removed.
func (l *Log) DeleteTenant(tenant string) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	st := l.streams[tenant]
	delete(l.streams, tenant)
	l.mu.Unlock()
	if st != nil {
		st.mu.Lock()
		for sub := range st.subs {
			sub.closed = true
			close(sub.ch)
			l.subscribers.Add(-1)
		}
		st.subs = make(map[*Subscriber]struct{})
		st.mu.Unlock()
	}
	if l.persistent {
		return l.store.DeleteEvents(tenant)
	}
	return nil
}

// flusher is the background durability loop: it drains every stream's
// append queue into the store (one batched write per tenant per pass)
// and runs retention compaction when a log outgrows its caps.
func (l *Log) flusher() {
	defer l.done.Done()
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.persistent {
		// The slow ticker exists for age-based retention on otherwise
		// idle streams; active streams compact on their own flushes.
		tick = time.NewTicker(time.Minute)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-l.stop:
			l.Flush()
			return
		case <-l.kick:
			// Coalesce: let the burst that kicked us finish emitting so
			// the whole batch lands as one write, and keep the wake off
			// the emitter's heels.
			if d := l.opts.FlushDelay; d > 0 {
				t := time.NewTimer(d)
				select {
				case <-l.stop:
					t.Stop()
					l.Flush()
					return
				case <-t.C:
				}
			}
			l.Flush()
		case <-tickC:
			l.Flush()
		}
	}
}

// Flush synchronously drains every queued durable append and runs any
// due compaction. The flusher calls it continuously; tests and
// shutdown call it directly for a deterministic rendezvous.
func (l *Log) Flush() {
	if l == nil || !l.persistent {
		return
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	for _, st := range l.streamList() {
		st.mu.Lock()
		q := st.queue
		st.queue = nil
		st.mu.Unlock()
		if len(q) > 0 {
			lines := make([][]byte, 0, len(q))
			var bytes int64
			oldest := q[0].Time
			for _, e := range q {
				line, err := json.Marshal(e)
				if err != nil {
					l.opts.Logf("events: marshaling event seq %d: %v", e.Seq, err)
					l.dropped.Counter("append_failure").Inc()
					continue
				}
				lines = append(lines, line)
				bytes += int64(len(line)) + 1
			}
			if err := l.store.AppendEvents(st.tenant, lines); err != nil {
				l.opts.Logf("events: appending %d event(s) for tenant %q: %v", len(lines), st.tenant, err)
				l.dropped.Counter("append_failure").Add(int64(len(lines)))
			} else {
				st.mu.Lock()
				st.logBytes += bytes
				if st.oldest.IsZero() {
					st.oldest = oldest
				}
				st.mu.Unlock()
			}
		}
		l.maybeCompact(st)
	}
}

// maybeCompact rewrites the tenant's durable log when it exceeds the
// size cap or its oldest record outlives the retention window. Caller
// holds flushMu (compaction must not race an append).
func (l *Log) maybeCompact(st *stream) {
	st.mu.Lock()
	overSize := st.logBytes > l.opts.MaxLogBytes
	overAge := l.opts.Retention > 0 && !st.oldest.IsZero() &&
		l.opts.Now().Sub(st.oldest) > l.opts.Retention
	st.mu.Unlock()
	if !overSize && !overAge {
		return
	}
	type rec struct {
		line []byte
		seq  uint64
		t    time.Time
	}
	var recs []rec
	err := l.store.ReplayEvents(st.tenant, func(line []byte) error {
		var e struct {
			Seq  uint64    `json:"seq"`
			Time time.Time `json:"time"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		recs = append(recs, rec{line: append([]byte(nil), line...), seq: e.Seq, t: e.Time})
		return nil
	})
	if err != nil {
		l.opts.Logf("events: compaction scan for tenant %q: %v", st.tenant, err)
		return
	}
	// Age pass first, then trim oldest-first down to half the size cap
	// (hysteresis: compacting to exactly the cap would retrigger on the
	// next append).
	keep := recs
	if l.opts.Retention > 0 {
		cutoff := l.opts.Now().Add(-l.opts.Retention)
		i := 0
		for i < len(keep) && keep[i].t.Before(cutoff) {
			i++
		}
		keep = keep[i:]
	}
	var total int64
	for _, r := range keep {
		total += int64(len(r.line)) + 1
	}
	for len(keep) > 0 && total > l.opts.MaxLogBytes/2 {
		total -= int64(len(keep[0].line)) + 1
		keep = keep[1:]
	}
	if len(keep) == len(recs) {
		return
	}
	lines := make([][]byte, len(keep))
	for i, r := range keep {
		lines[i] = r.line
	}
	size, err := l.store.RewriteEvents(st.tenant, lines)
	if err != nil {
		l.opts.Logf("events: compacting tenant %q log: %v", st.tenant, err)
		return
	}
	st.mu.Lock()
	st.logBytes = size
	if len(keep) > 0 {
		st.oldest = keep[0].t
	} else {
		st.oldest = time.Time{}
	}
	st.mu.Unlock()
	l.opts.Logf("events: tenant %q log compacted (%d of %d record(s) kept, %d bytes)",
		st.tenant, len(keep), len(recs), size)
}

// Close flushes queued appends, stops the flusher and closes every
// subscriber. The Log is unusable afterwards (emits are dropped).
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.done.Wait()
	for _, st := range l.streamList() {
		st.mu.Lock()
		for sub := range st.subs {
			sub.closed = true
			close(sub.ch)
			l.subscribers.Add(-1)
		}
		st.subs = make(map[*Subscriber]struct{})
		st.mu.Unlock()
	}
	return nil
}
