package events

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// BenchmarkEventFanout prices one Emit as the live subscriber count
// grows: delivery is a non-blocking channel send per subscriber under
// the stream lock, so the cost must scale linearly in subscribers and
// never block the emitter. Subscribers drain concurrently; a slow one
// would drop-with-gap rather than slow this loop down.
func BenchmarkEventFanout(b *testing.B) {
	for _, subs := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			l, err := Open(Options{MaxSubscribers: subs, SubscriberBuffer: 1024})
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			open := make([]*Subscriber, subs)
			for i := range open {
				sub, err := l.Subscribe("tn_b1")
				if err != nil {
					b.Fatal(err)
				}
				open[i] = sub
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range sub.C() {
					}
				}()
			}
			ctx := context.Background()
			e := Event{Type: TypeDecisionRecorded, Tenant: "tn_b1", Actor: "admin", Data: map[string]any{"group_id": 1}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Emit(ctx, e)
			}
			b.StopTimer()
			for _, sub := range open {
				sub.Close()
			}
			wg.Wait()
			l.Close()
		})
	}
}
