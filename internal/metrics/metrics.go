// Package metrics implements the evaluation methodology of Section 8:
// sample non-identical same-cluster value pairs, label each as a variant
// pair or a conflict pair against ground truth, and after standardization
// count the confusion matrix of Table 7 to compute precision, recall and
// the Matthews correlation coefficient.
package metrics

import (
	"math"
	"math/rand"

	"github.com/goldrec/goldrec/table"
)

// SamplePair is one labeled evaluation pair: two cells of the same
// cluster whose initial values differ. Variant records the ground truth
// (true = the values are logically the same).
type SamplePair struct {
	A, B    table.Cell
	Variant bool
}

// Sample draws up to n labeled *distinct value pairs* for the column:
// every unordered pair of non-identical values co-occurring in a cluster
// counts once (the paper samples 1000 distinct non-identical value pairs
// per dataset; Table 6 counts distinct value pairs the same way), and is
// represented by the first pair of cells that exhibits it. Sampling is
// deterministic for a given seed.
func Sample(ds *table.Dataset, tr *table.Truth, col, n int, seed int64) []SamplePair {
	type valPair struct{ a, b string }
	seen := make(map[valPair]bool)
	var pool []SamplePair
	for ci := range ds.Clusters {
		recs := ds.Clusters[ci].Records
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				vi, vj := recs[i].Values[col], recs[j].Values[col]
				if vi == vj || vi == "" || vj == "" {
					continue
				}
				key := valPair{vi, vj}
				if vi > vj {
					key = valPair{vj, vi}
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				a := table.Cell{Cluster: ci, Row: i, Col: col}
				b := table.Cell{Cluster: ci, Row: j, Col: col}
				pool = append(pool, SamplePair{A: a, B: b, Variant: tr.Variant(a, b)})
			}
		}
	}
	if len(pool) <= n {
		return pool
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:n]
}

// Confusion is the Table 7 confusion matrix: variant pairs that became
// identical are true positives, conflict pairs that became identical are
// false positives, and so on.
type Confusion struct {
	TP, FP, FN, TN int
}

// Evaluate classifies every sample pair by whether its two cells now hold
// identical values.
func Evaluate(ds *table.Dataset, sample []SamplePair) Confusion {
	var c Confusion
	for _, p := range sample {
		identical := ds.Value(p.A) == ds.Value(p.B)
		switch {
		case p.Variant && identical:
			c.TP++
		case p.Variant && !identical:
			c.FN++
		case !p.Variant && identical:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP); 1 when nothing was made identical (no
// replacements were applied, so nothing was standardized incorrectly).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 0 when the sample has no variant pairs.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// MCC returns the Matthews correlation coefficient in [-1, 1]; 0 when
// any marginal is zero (the conventional definition).
func (c Confusion) MCC() float64 {
	tp, fp, fn, tn := float64(c.TP), float64(c.FP), float64(c.FN), float64(c.TN)
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / den
}

// VariantShare returns the fraction of pairs labeled variant — the
// "variant value pairs %" row of Table 6 when evaluated on (a sample of)
// all distinct pairs.
func VariantShare(sample []SamplePair) float64 {
	if len(sample) == 0 {
		return 0
	}
	n := 0
	for _, p := range sample {
		if p.Variant {
			n++
		}
	}
	return float64(n) / float64(len(sample))
}
