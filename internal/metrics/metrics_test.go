package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/goldrec/goldrec/table"
)

func buildDataset() (*table.Dataset, *table.Truth) {
	ds := &table.Dataset{
		Attrs: []string{"A"},
		Clusters: []table.Cluster{
			{Records: []table.Record{
				{Values: []string{"9 St"}},
				{Values: []string{"9th St"}},
				{Values: []string{"somewhere else"}},
			}},
			{Records: []table.Record{
				{Values: []string{"x"}},
				{Values: []string{"x"}},
			}},
		},
	}
	tr := table.NewTruth(ds)
	tr.Canon[0][0][0] = "9th Street"
	tr.Canon[0][1][0] = "9th Street"
	tr.Canon[0][2][0] = "Elsewhere Road"
	tr.Canon[1][0][0] = "x"
	tr.Canon[1][1][0] = "x"
	return ds, tr
}

func TestSampleLabelsPairs(t *testing.T) {
	ds, tr := buildDataset()
	pairs := Sample(ds, tr, 0, 100, 1)
	// Cluster 0 has 3 distinct values → 3 unordered pairs; cluster 1
	// has identical values → none.
	if len(pairs) != 3 {
		t.Fatalf("sample size = %d, want 3", len(pairs))
	}
	variants := 0
	for _, p := range pairs {
		if p.Variant {
			variants++
		}
	}
	if variants != 1 {
		t.Errorf("variant pairs = %d, want 1 (9 St vs 9th St)", variants)
	}
}

func TestSampleDeterministicAndBounded(t *testing.T) {
	ds, tr := buildDataset()
	a := Sample(ds, tr, 0, 2, 42)
	b := Sample(ds, tr, 0, 2, 42)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("bounded sample sizes = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestEvaluateConfusion(t *testing.T) {
	ds, tr := buildDataset()
	pairs := Sample(ds, tr, 0, 100, 1)
	// Before any standardization nothing is identical: TP=0, FP=0.
	c := Evaluate(ds, pairs)
	if c.TP != 0 || c.FP != 0 || c.FN != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 1 {
		t.Errorf("precision with no changes = %v, want 1", c.Precision())
	}
	if c.Recall() != 0 {
		t.Errorf("recall = %v, want 0", c.Recall())
	}
	// Standardize the variant pair correctly.
	ds.SetValue(table.Cell{Cluster: 0, Row: 0, Col: 0}, "9th St")
	c = Evaluate(ds, pairs)
	if c.TP != 1 || c.FN != 0 {
		t.Fatalf("confusion after fix = %+v", c)
	}
	if c.Recall() != 1 || c.Precision() != 1 {
		t.Errorf("precision/recall = %v/%v, want 1/1", c.Precision(), c.Recall())
	}
	// Now corrupt a conflict pair into identity: a false positive.
	ds.SetValue(table.Cell{Cluster: 0, Row: 2, Col: 0}, "9th St")
	c = Evaluate(ds, pairs)
	if c.FP != 2 {
		// Both conflict pairs involving row 2 become identical.
		t.Fatalf("confusion after corruption = %+v", c)
	}
	if c.Precision() >= 1 {
		t.Errorf("precision = %v, want < 1", c.Precision())
	}
}

func TestMCCRangeProperty(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		m := c.MCC()
		return m >= -1-1e-9 && m <= 1+1e-9 && !math.IsNaN(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMCCPerfectAndInverse(t *testing.T) {
	if got := (Confusion{TP: 10, TN: 10}).MCC(); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect MCC = %v, want 1", got)
	}
	if got := (Confusion{FP: 10, FN: 10}).MCC(); math.Abs(got+1) > 1e-9 {
		t.Errorf("inverse MCC = %v, want -1", got)
	}
	if got := (Confusion{}).MCC(); got != 0 {
		t.Errorf("empty MCC = %v, want 0", got)
	}
}

func TestVariantShare(t *testing.T) {
	pairs := []SamplePair{{Variant: true}, {Variant: false}, {Variant: true}, {Variant: true}}
	if got := VariantShare(pairs); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("VariantShare = %v, want 0.75", got)
	}
	if got := VariantShare(nil); got != 0 {
		t.Errorf("VariantShare(nil) = %v, want 0", got)
	}
}
