// Package align provides the sequence-alignment utilities Appendix A of
// the paper uses to generate fine-grained token-level candidate
// replacements: longest-common-subsequence alignment of token sequences
// and the Damerau-Levenshtein alternative it cites [11].
package align

// Gap is a pair of aligned, non-identical segments: A[ABeg:AEnd] on one
// side corresponds to B[BBeg:BEnd] on the other. One side may be empty
// (pure insertion/deletion).
type Gap struct {
	ABeg, AEnd int
	BBeg, BEnd int
}

// LCS returns the index pairs (i, j) of a longest common subsequence of a
// and b, in increasing order of both coordinates.
func LCS(a, b []string) [][2]int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out [][2]int
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a[i] == b[j]:
			out = append(out, [2]int{i, j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// Gaps aligns a and b by their LCS and returns the maximal non-identical
// aligned segment pairs between consecutive matches (Appendix A: "each
// aligned pair of non-identical subsequences composes a pair of candidate
// replacements").
func Gaps(a, b []string) []Gap {
	matches := LCS(a, b)
	var out []Gap
	pa, pb := 0, 0
	emit := func(ae, be int) {
		if pa < ae || pb < be {
			out = append(out, Gap{ABeg: pa, AEnd: ae, BBeg: pb, BEnd: be})
		}
	}
	for _, m := range matches {
		emit(m[0], m[1])
		pa, pb = m[0]+1, m[1]+1
	}
	emit(len(a), len(b))
	return out
}

// DamerauLevenshtein returns the restricted Damerau-Levenshtein edit
// distance (insertions, deletions, substitutions and adjacent
// transpositions) between two rune sequences.
func DamerauLevenshtein(a, b []rune) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev2 := make([]int, m+1)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < best {
					best = t
				}
			}
			cur[j] = best
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditGaps aligns two rune strings with a Levenshtein edit script and
// returns the maximal runs of non-matching characters as Gaps over rune
// indexes. It is the character-level alignment alternative mentioned at
// the end of Appendix A (Wang et al. [41] work at the character level).
func EditGaps(a, b []rune) []Gap {
	n, m := len(a), len(b)
	// dp[i][j] = edit distance between a[i:] and b[j:], so the
	// traceback below runs forward and prefers matches.
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n; i >= 0; i-- {
		for j := m; j >= 0; j-- {
			switch {
			case i == n:
				dp[i][j] = m - j
			case j == m:
				dp[i][j] = n - i
			case a[i] == b[j]:
				dp[i][j] = dp[i+1][j+1]
			default:
				dp[i][j] = 1 + min3(dp[i+1][j+1], dp[i+1][j], dp[i][j+1])
			}
		}
	}
	var out []Gap
	pa, pb := 0, 0
	i, j := 0, 0
	emit := func(ae, be int) {
		if pa < ae || pb < be {
			out = append(out, Gap{ABeg: pa, AEnd: ae, BBeg: pb, BEnd: be})
		}
	}
	for i < n && j < m {
		if a[i] == b[j] && dp[i][j] == dp[i+1][j+1] {
			emit(i, j)
			i++
			j++
			pa, pb = i, j
			continue
		}
		switch {
		case dp[i][j] == 1+dp[i+1][j+1]:
			i++
			j++
		case dp[i][j] == 1+dp[i+1][j]:
			i++
		default:
			j++
		}
	}
	emit(n, m)
	return out
}
