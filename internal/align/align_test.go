package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLCSBasic(t *testing.T) {
	a := strings.Fields("9 St, 02141 Wisconsin")
	b := strings.Fields("9th St, 02141 WI")
	matches := LCS(a, b)
	// The LCS is "St, 02141" (two tokens).
	if len(matches) != 2 {
		t.Fatalf("LCS = %v, want 2 matches", matches)
	}
	if a[matches[0][0]] != "St," || a[matches[1][0]] != "02141" {
		t.Errorf("LCS matched wrong tokens: %v", matches)
	}
}

func TestGapsExampleA1(t *testing.T) {
	// Example A.1: "9 St, 02141 Wisconsin" vs "9th St, 02141 WI"
	// produces the aligned non-identical segments (9 vs 9th) and
	// (Wisconsin vs WI).
	a := strings.Fields("9 St, 02141 Wisconsin")
	b := strings.Fields("9th St, 02141 WI")
	gaps := Gaps(a, b)
	if len(gaps) != 2 {
		t.Fatalf("Gaps = %v, want 2", gaps)
	}
	if g := gaps[0]; !(g.ABeg == 0 && g.AEnd == 1 && g.BBeg == 0 && g.BEnd == 1) {
		t.Errorf("gap 0 = %+v", g)
	}
	if g := gaps[1]; !(g.ABeg == 3 && g.AEnd == 4 && g.BBeg == 3 && g.BEnd == 4) {
		t.Errorf("gap 1 = %+v", g)
	}
}

func TestGapsIdentical(t *testing.T) {
	a := strings.Fields("a b c")
	if gaps := Gaps(a, a); len(gaps) != 0 {
		t.Errorf("identical sequences should produce no gaps, got %v", gaps)
	}
}

func TestGapsInsertionOnly(t *testing.T) {
	a := strings.Fields("a c")
	b := strings.Fields("a b c")
	gaps := Gaps(a, b)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	g := gaps[0]
	if g.ABeg != g.AEnd || g.BEnd-g.BBeg != 1 {
		t.Errorf("want pure insertion, got %+v", g)
	}
}

func TestGapsDisjointFullReplacement(t *testing.T) {
	a := strings.Fields("x y")
	b := strings.Fields("p q r")
	gaps := Gaps(a, b)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	if g := gaps[0]; !(g.AEnd == 2 && g.BEnd == 3 && g.ABeg == 0 && g.BBeg == 0) {
		t.Errorf("gap = %+v", g)
	}
}

func TestLCSProperty(t *testing.T) {
	// The match list is strictly increasing in both coordinates and
	// matched tokens are equal.
	tokens := []string{"a", "b", "c", "d"}
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := make([]string, int(na%10))
		b := make([]string, int(nb%10))
		for i := range a {
			a[i] = tokens[r.Intn(len(tokens))]
		}
		for i := range b {
			b[i] = tokens[r.Intn(len(tokens))]
		}
		matches := LCS(a, b)
		pi, pj := -1, -1
		for _, m := range matches {
			if m[0] <= pi || m[1] <= pj {
				return false
			}
			if a[m[0]] != b[m[1]] {
				return false
			}
			pi, pj = m[0], m[1]
		}
		// Symmetry of length.
		rev := LCS(b, a)
		return len(rev) == len(matches)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"ab", "ba", 1}, // transposition
		{"abcd", "acbd", 1},
		{"ca", "abc", 3}, // restricted DL: no edit between transposed parts
	}
	for _, c := range cases {
		got := DamerauLevenshtein([]rune(c.a), []rune(c.b))
		if got != c.want {
			t.Errorf("DL(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshteinProperties(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []rune("abc")
		a := make([]rune, int(na%12))
		b := make([]rune, int(nb%12))
		for i := range a {
			a[i] = alphabet[r.Intn(len(alphabet))]
		}
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		d := DamerauLevenshtein(a, b)
		// Symmetry, identity, and bounded by max length.
		if d != DamerauLevenshtein(b, a) {
			return false
		}
		if string(a) == string(b) && d != 0 {
			return false
		}
		if string(a) != string(b) && d == 0 {
			return false
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditGaps(t *testing.T) {
	gaps := EditGaps([]rune("9 St"), []rune("9th St"))
	// One gap: "" vs "th" right after the 9.
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	g := gaps[0]
	if g.ABeg != g.AEnd {
		t.Errorf("want pure insertion on A side, got %+v", g)
	}
	if got := string([]rune("9th St")[g.BBeg:g.BEnd]); got != "th" {
		t.Errorf("inserted = %q, want \"th\"", got)
	}
}

func TestEditGapsCoverAllDifferences(t *testing.T) {
	// Replacing every gap on the A side with the B side must
	// reconstruct B.
	f := func(seed int64, na, nb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []rune("ab ")
		a := make([]rune, int(na%15))
		b := make([]rune, int(nb%15))
		for i := range a {
			a[i] = alphabet[r.Intn(len(alphabet))]
		}
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		gaps := EditGaps(a, b)
		var rebuilt []rune
		pa, pb := 0, 0
		for _, g := range gaps {
			rebuilt = append(rebuilt, a[pa:g.ABeg]...)
			rebuilt = append(rebuilt, b[g.BBeg:g.BEnd]...)
			pa, pb = g.AEnd, g.BEnd
		}
		rebuilt = append(rebuilt, a[pa:]...)
		_ = pb
		return string(rebuilt) == string(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
