package goldrec

import (
	"strings"
	"testing"

	"github.com/goldrec/goldrec/table"
)

func TestResolveByKeyAttr(t *testing.T) {
	attrs := []string{"isbn", "authors"}
	records := []table.Record{
		{Values: []string{"111", "mary lee"}},
		{Values: []string{"222", "james smith"}},
		{Values: []string{"111", "lee, mary"}},
	}
	ds, err := Resolve("books", attrs, records, ResolveOptions{KeyAttr: "isbn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(ds.Clusters))
	}
	if len(ds.Clusters[0].Records) != 2 {
		t.Errorf("cluster 0 size = %d, want 2", len(ds.Clusters[0].Records))
	}
}

func TestResolveBySimilarity(t *testing.T) {
	attrs := []string{"title"}
	records := []table.Record{
		{Values: []string{"journal of clinical medicine"}},
		{Values: []string{"journal of clinical medicine research"}},
		{Values: []string{"annals of statistics"}},
	}
	ds, err := Resolve("journals", attrs, records, ResolveOptions{MatchAttr: "title", Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(ds.Clusters))
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve("x", []string{"a"}, nil, ResolveOptions{KeyAttr: "missing"}); err == nil {
		t.Error("missing key attr should fail")
	}
	if _, err := Resolve("x", []string{"a"}, nil, ResolveOptions{MatchAttr: "missing"}); err == nil {
		t.Error("missing match attr should fail")
	}
}

func TestResolveThenConsolidate(t *testing.T) {
	// Full front-to-back: flat CSV → resolve → standardize → golden.
	csv := "isbn,authors\n1,mary lee\n1,\"lee, mary\"\n1,mary lee\n2,james smith\n2,\"smith, james\"\n2,james smith\n"
	attrs, records, err := table.ReadFlatCSV(strings.NewReader(csv), "books", "")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Resolve("books", attrs, records, ResolveOptions{KeyAttr: "isbn"})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cons.Column("authors")
	if err != nil {
		t.Fatal(err)
	}
	sess.RunBudget(0, func(g *Group) (bool, Direction) {
		// Approve transpositions toward the space-separated form.
		if strings.Contains(g.Pairs[0].LHS, ",") {
			return true, Forward
		}
		return false, Forward
	})
	golden := cons.GoldenRecords()
	for _, rec := range golden {
		if strings.Contains(rec.Values[1], ",") {
			t.Errorf("golden author list still inverted: %q", rec.Values[1])
		}
	}
}

func TestGoldenRecordsTruthFinder(t *testing.T) {
	ds := &table.Dataset{
		Attrs: []string{"A"},
		Clusters: []table.Cluster{
			{Records: []table.Record{
				{Source: "s1", Values: []string{"value one"}},
				{Source: "s2", Values: []string{"value one"}},
				{Source: "s3", Values: []string{"other"}},
			}},
		},
	}
	cons, _ := New(ds)
	golden := cons.GoldenRecordsTruthFinder()
	if golden[0].Values[0] != "value one" {
		t.Errorf("truthfinder golden = %q", golden[0].Values[0])
	}
}
