// Addresses standardizes a synthetic organization-address dataset (the
// paper's Address workload) under a human budget, using the ground-truth
// oracle as the simulated expert, and reports how many of the variant
// pairs were unified — the experiment behind the paper's headline result
// (75% recall, 99.5% precision after 100 yes/no questions).
package main

import (
	"flag"
	"fmt"

	"github.com/goldrec/goldrec"
	"github.com/goldrec/goldrec/internal/datagen"
	"github.com/goldrec/goldrec/table"
)

func main() {
	var (
		clusters = flag.Int("clusters", 120, "number of organization clusters")
		budget   = flag.Int("budget", 100, "groups the human reviews")
		seed     = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	gen := datagen.Address(datagen.Config{Seed: *seed, Clusters: *clusters})
	ds := gen.Data
	fmt.Printf("generated %d clusters / %d records, e.g.:\n", len(ds.Clusters), ds.NumRecords())
	for _, r := range ds.Clusters[1].Records {
		fmt.Printf("  %s\n", r.Values[gen.Col])
	}

	before := countUnified(ds, gen.Truth, gen.Col)

	cons, err := goldrec.New(ds)
	if err != nil {
		panic(err)
	}
	sess, err := cons.ColumnIndex(gen.Col)
	if err != nil {
		panic(err)
	}
	reviewed := sess.RunBudget(*budget, sess.OracleVerifier(gen.Truth, 0))
	st := sess.Stats()
	after := countUnified(ds, gen.Truth, gen.Col)

	fmt.Printf("\nreviewed %d groups (budget %d), applied %d, changed %d cells\n",
		reviewed, *budget, st.GroupsApplied, st.CellsChanged)
	fmt.Printf("variant cell pairs unified: %d/%d before → %d/%d after (%.1f%% recall)\n",
		before.unified, before.total, after.unified, after.total,
		100*float64(after.unified)/float64(max(after.total, 1)))
	fmt.Printf("conflict cell pairs incorrectly merged: %d (%.2f%% of conflicts)\n",
		after.corrupted, 100*float64(after.corrupted)/float64(max(after.conflicts, 1)))
}

type unifyStats struct {
	unified, total, corrupted, conflicts int
}

// countUnified scans all same-cluster cell pairs: variant pairs that hold
// identical values are "unified"; conflict pairs that hold identical
// values are corruption.
func countUnified(ds *table.Dataset, tr *table.Truth, col int) unifyStats {
	var st unifyStats
	for ci := range ds.Clusters {
		recs := ds.Clusters[ci].Records
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				a := table.Cell{Cluster: ci, Row: i, Col: col}
				b := table.Cell{Cluster: ci, Row: j, Col: col}
				same := ds.Value(a) == ds.Value(b)
				if tr.Variant(a, b) {
					st.total++
					if same {
						st.unified++
					}
				} else {
					st.conflicts++
					if same {
						st.corrupted++
					}
				}
			}
		}
	}
	return st
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
