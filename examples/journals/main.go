// Journals demonstrates the downstream effect of standardization on
// truth discovery (the paper's Table 8): majority-consensus golden
// records on the journal-title dataset before and after running the
// budgeted standardization loop.
package main

import (
	"flag"
	"fmt"
	"strings"

	"github.com/goldrec/goldrec"
	"github.com/goldrec/goldrec/internal/datagen"
	"github.com/goldrec/goldrec/table"
)

func main() {
	var (
		clusters = flag.Int("clusters", 320, "number of journal clusters")
		budget   = flag.Int("budget", 100, "groups the human reviews")
		seed     = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	gen := datagen.JournalTitle(datagen.Config{Seed: *seed, Clusters: *clusters})
	ds := gen.Data

	cons, err := goldrec.New(ds)
	if err != nil {
		panic(err)
	}
	before := mcPrecision(cons, ds, gen.Truth, gen.Col)

	sess, err := cons.ColumnIndex(gen.Col)
	if err != nil {
		panic(err)
	}
	sess.RunBudget(*budget, sess.OracleVerifier(gen.Truth, 0))
	after := mcPrecision(cons, ds, gen.Truth, gen.Col)

	fmt.Printf("majority-consensus golden-record precision:\n")
	fmt.Printf("  before standardization: %.3f\n", before)
	fmt.Printf("  after  standardization: %.3f\n", after)

	fmt.Println("\nsample golden records after standardization:")
	golden := cons.GoldenRecords()
	shown := 0
	for ci, rec := range golden {
		if rec.Values[gen.Col] == "" || len(ds.Clusters[ci].Records) < 2 {
			continue
		}
		fmt.Printf("  %-18s %s\n", ds.Clusters[ci].Key, rec.Values[gen.Col])
		if shown++; shown >= 5 {
			break
		}
	}
}

// mcPrecision compares majority-consensus golden values to the known
// golden records, case-insensitively (Section 8.3's protocol), counting
// consensus failures as misses.
func mcPrecision(cons *goldrec.Consolidator, ds *table.Dataset, tr *table.Truth, col int) float64 {
	golden := cons.GoldenRecords()
	tp, total := 0, 0
	for ci := range ds.Clusters {
		want := tr.GoldenOf(ci, col)
		if want == "" {
			continue
		}
		total++
		if strings.EqualFold(golden[ci].Values[col], want) {
			tp++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(tp) / float64(total)
}
