// Quickstart reproduces the paper's running example (Figure 1): the
// clustered records of Table 1 are standardized into Table 2 and
// consolidated into the golden records of Table 3, using only the public
// API. The "human" is a small callback that recognizes the variant pairs
// of the example.
package main

import (
	"fmt"
	"strings"

	"github.com/goldrec/goldrec"
	"github.com/goldrec/goldrec/table"
)

func main() {
	ds := &table.Dataset{
		Name:  "paper-example",
		Attrs: []string{"Name", "Address"},
		Clusters: []table.Cluster{
			{Key: "C1", Records: []table.Record{
				{Values: []string{"Mary Lee", "9 St, 02141 Wisconsin"}},
				{Values: []string{"M. Lee", "9th St, 02141 WI"}},
				{Values: []string{"Lee, Mary", "9 Street, 02141 WI"}},
			}},
			{Key: "C2", Records: []table.Record{
				{Values: []string{"Smith, James", "5th St, 22701 California"}},
				{Values: []string{"James Smith", "3rd E Ave, 33990 California"}},
				{Values: []string{"J. Smith", "3 E Avenue, 33990 CA"}},
			}},
		},
	}
	fmt.Println("Table 1 (input):")
	printDataset(ds)

	cons, err := goldrec.New(ds)
	if err != nil {
		panic(err)
	}

	// The standard forms the human is steering toward (what they know
	// about the entities behind the clusters).
	standard := []string{
		"Mary Lee", "James Smith",
		"9th Street, 02141 WI", "3rd E Avenue, 33990 CA", "5th Street, 22701 CA",
	}

	for _, attr := range []string{"Name", "Address"} {
		sess, err := cons.Column(attr)
		if err != nil {
			panic(err)
		}
		reviewed := sess.RunBudget(0, func(g *goldrec.Group) (bool, goldrec.Direction) {
			return verify(g, standard)
		})
		st := sess.Stats()
		fmt.Printf("column %-8s: %2d candidate replacements, %2d groups reviewed, %d applied, %d cells changed\n",
			attr, st.Candidates, reviewed, st.GroupsApplied, st.CellsChanged)
	}

	fmt.Println("\nTable 2 (variant values standardized):")
	printDataset(ds)

	fmt.Println("Table 3 (golden records):")
	for ci, rec := range cons.GoldenRecords() {
		fmt.Printf("  %s: %s\n", ds.Clusters[ci].Key, strings.Join(rec.Values, " | "))
	}
}

// verify plays the human expert: approve a group when every member pair
// can plausibly be two renderings of the same thing (here: both sides
// reduce to the same standard string), and pick the direction that moves
// values toward the standard forms.
func verify(g *goldrec.Group, standard []string) (bool, goldrec.Direction) {
	towardRHS, towardLHS := 0, 0
	for _, p := range g.Pairs {
		lhsStd := matchesStandard(p.LHS, standard)
		rhsStd := matchesStandard(p.RHS, standard)
		if !lhsStd && !rhsStd {
			return false, goldrec.Forward // neither side looks standard: reject
		}
		if rhsStd {
			towardRHS++
		} else {
			towardLHS++
		}
	}
	if towardLHS > towardRHS {
		return true, goldrec.Backward
	}
	return true, goldrec.Forward
}

// matchesStandard reports whether v appears, as a whole value or a token
// run, inside one of the standard forms.
func matchesStandard(v string, standard []string) bool {
	vt := strings.Fields(v)
	for _, s := range standard {
		st := strings.Fields(s)
		for i := 0; i+len(vt) <= len(st); i++ {
			match := true
			for k := range vt {
				if st[i+k] != vt[k] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
	}
	return false
}

func printDataset(ds *table.Dataset) {
	for ci := range ds.Clusters {
		for _, r := range ds.Clusters[ci].Records {
			fmt.Printf("  %s | %s\n", ds.Clusters[ci].Key, strings.Join(r.Values, " | "))
		}
	}
	fmt.Println()
}
