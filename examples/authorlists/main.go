// Authorlists browses the largest replacement groups of a synthetic
// book/author-list dataset — the Table 4 experience: each group shows
// value pairs that share one learned transformation (name transposition,
// initials, nickname shortening, role annotations, ...), generated
// incrementally so the first group arrives without paying the full
// upfront grouping cost.
package main

import (
	"flag"
	"fmt"
	"time"

	"github.com/goldrec/goldrec"
	"github.com/goldrec/goldrec/internal/datagen"
)

func main() {
	var (
		clusters = flag.Int("clusters", 60, "number of book clusters")
		k        = flag.Int("k", 8, "groups to browse")
		seed     = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	gen := datagen.AuthorList(datagen.Config{Seed: *seed, Clusters: *clusters})
	cons, err := goldrec.New(gen.Data)
	if err != nil {
		panic(err)
	}
	sess, err := cons.ColumnIndex(gen.Col)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d candidate replacements from %d clusters\n\n",
		sess.Stats().Candidates, len(gen.Data.Clusters))

	for i := 0; i < *k; i++ {
		start := time.Now()
		g, ok := sess.NextGroup()
		if !ok {
			break
		}
		fmt.Printf("Group %c — %d members, generated in %v\n",
			'A'+i, g.Size(), time.Since(start).Round(time.Microsecond))
		fmt.Printf("  transformation: %s\n", g.Program)
		for pi, p := range g.Pairs {
			if pi >= 5 {
				fmt.Printf("  ... and %d more\n", len(g.Pairs)-5)
				break
			}
			fmt.Printf("  %q → %q\n", p.LHS, p.RHS)
		}
		fmt.Println()
	}
}
