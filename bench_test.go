package goldrec

// One benchmark per table and figure of the paper's evaluation
// (Section 8). Each bench runs the corresponding experiment harness at a
// reduced scale (benchmarks must terminate in seconds, and the prune-free
// OneShot arm of Figure 9 is deliberately exponential) and reports the
// headline quantity as a custom metric, so `go test -bench=.` regenerates
// the whole evaluation. cmd/benchrunner produces the full-size versions.

import (
	"testing"

	"github.com/goldrec/goldrec/internal/datagen"
	"github.com/goldrec/goldrec/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 42, Budget: 40, Step: 10, SampleN: 500}
}

func benchAddress() *datagen.Generated {
	return datagen.Address(datagen.Config{Seed: 42, Clusters: 40})
}

func benchAuthors() *datagen.Generated {
	return datagen.AuthorList(datagen.Config{Seed: 42, Clusters: 16})
}

func benchJournals() *datagen.Generated {
	return datagen.JournalTitle(datagen.Config{Seed: 42, Clusters: 100})
}

func lastPoint(r experiments.StandResult) experiments.Point {
	return r.Points[len(r.Points)-1]
}

// BenchmarkFigure6Precision regenerates the precision sweep of Figure 6
// (Group vs Single vs Trifacta) on the Address dataset.
func BenchmarkFigure6Precision(b *testing.B) {
	g := benchAddress()
	for i := 0; i < b.N; i++ {
		group := experiments.RunStandardization(g, experiments.MethodGroup, benchCfg())
		single := experiments.RunStandardization(g, experiments.MethodSingle, benchCfg())
		trifacta := experiments.RunStandardization(g, experiments.MethodTrifacta, benchCfg())
		b.ReportMetric(lastPoint(group).Precision, "group-precision")
		b.ReportMetric(lastPoint(single).Precision, "single-precision")
		b.ReportMetric(lastPoint(trifacta).Precision, "trifacta-precision")
	}
}

// BenchmarkFigure7Recall regenerates the recall sweep of Figure 7.
func BenchmarkFigure7Recall(b *testing.B) {
	g := benchJournals()
	for i := 0; i < b.N; i++ {
		group := experiments.RunStandardization(g, experiments.MethodGroup, benchCfg())
		single := experiments.RunStandardization(g, experiments.MethodSingle, benchCfg())
		trifacta := experiments.RunStandardization(g, experiments.MethodTrifacta, benchCfg())
		b.ReportMetric(lastPoint(group).Recall, "group-recall")
		b.ReportMetric(lastPoint(single).Recall, "single-recall")
		b.ReportMetric(lastPoint(trifacta).Recall, "trifacta-recall")
	}
}

// BenchmarkFigure8MCC regenerates the MCC sweep of Figure 8.
func BenchmarkFigure8MCC(b *testing.B) {
	g := benchAddress()
	for i := 0; i < b.N; i++ {
		group := experiments.RunStandardization(g, experiments.MethodGroup, benchCfg())
		single := experiments.RunStandardization(g, experiments.MethodSingle, benchCfg())
		trifacta := experiments.RunStandardization(g, experiments.MethodTrifacta, benchCfg())
		b.ReportMetric(lastPoint(group).MCC, "group-mcc")
		b.ReportMetric(lastPoint(single).MCC, "single-mcc")
		b.ReportMetric(lastPoint(trifacta).MCC, "trifacta-mcc")
	}
}

// BenchmarkFigure9GroupingTime regenerates the upfront-vs-incremental
// grouping cost comparison on a micro dataset (the OneShot arm is the
// paper's 4900-second baseline, scaled down).
func BenchmarkFigure9GroupingTime(b *testing.B) {
	g := datagen.JournalTitle(datagen.Config{Seed: 42, Clusters: 14})
	for i := 0; i < b.N; i++ {
		res := experiments.RunGroupingTime(g, 5, benchCfg(), false)
		b.ReportMetric(float64(res.OneShotUpfront.Microseconds()), "oneshot-upfront-us")
		b.ReportMetric(float64(res.EarlyTermUpfront.Microseconds()), "earlyterm-upfront-us")
		if len(res.IncrementalPerCall) > 0 {
			b.ReportMetric(float64(res.IncrementalPerCall[0].Microseconds()), "incremental-first-us")
		}
	}
}

// BenchmarkFigure10Affix regenerates the affix ablation recall.
func BenchmarkFigure10Affix(b *testing.B) {
	g := benchAddress()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure10([]*datagen.Generated{g}, benchCfg())
		b.ReportMetric(lastPoint(res[0]).Recall, "affix-recall")
		b.ReportMetric(lastPoint(res[1]).Recall, "noaffix-recall")
	}
}

// BenchmarkTable4SampleGroups regenerates the sample-group listing from
// the AuthorList dataset.
func BenchmarkTable4SampleGroups(b *testing.B) {
	g := benchAuthors()
	for i := 0; i < b.N; i++ {
		groups := experiments.SampleGroups(g, 5, 5, benchCfg())
		if len(groups) > 0 {
			b.ReportMetric(float64(groups[0].Size), "largest-group")
		}
	}
}

// BenchmarkTable6DatasetStats regenerates the dataset-details table.
func BenchmarkTable6DatasetStats(b *testing.B) {
	gens := []*datagen.Generated{benchAuthors(), benchAddress(), benchJournals()}
	for i := 0; i < b.N; i++ {
		stats := experiments.Table6(gens, benchCfg())
		b.ReportMetric(stats[1].VariantShare, "address-variant-share")
		b.ReportMetric(stats[2].VariantShare, "journal-variant-share")
	}
}

// BenchmarkTable8TruthDiscovery regenerates the majority-consensus
// precision improvement.
func BenchmarkTable8TruthDiscovery(b *testing.B) {
	gens := []*datagen.Generated{benchJournals()}
	for i := 0; i < b.N; i++ {
		res := experiments.Table8(gens, benchCfg())
		b.ReportMetric(res[0].Before, "mc-before")
		b.ReportMetric(res[0].After, "mc-after")
	}
}

// BenchmarkAblationConstantPruning regenerates the static-order ablation
// of DESIGN.md §6.
func BenchmarkAblationConstantPruning(b *testing.B) {
	g := datagen.Address(datagen.Config{Seed: 42, Clusters: 12})
	cfg := benchCfg()
	cfg.Budget = 15
	for i := 0; i < b.N; i++ {
		res := experiments.Ablations(g, cfg)
		for _, r := range res {
			if r.Name == "paper-default" {
				b.ReportMetric(r.Recall, "default-recall")
			}
		}
	}
}

// BenchmarkPipelineEndToEnd measures the full library path a downstream
// user takes: candidate generation, incremental grouping with a budget,
// application, truth discovery.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen := datagen.Address(datagen.Config{Seed: 42, Clusters: 30})
		cons, err := New(gen.Data)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := cons.ColumnIndex(gen.Col)
		if err != nil {
			b.Fatal(err)
		}
		sess.RunBudget(30, sess.OracleVerifier(gen.Truth, 0))
		_ = cons.GoldenRecords()
	}
}
