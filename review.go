package goldrec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
)

// The review file workflow decouples group generation from human
// verification: ExportReview writes the pending groups as JSON, a human
// (or an external review UI) fills in each group's decision, and
// ApplyReview performs the approved replacements. This mirrors how the
// paper's verification step would run in production, where the expert is
// not sitting at the same terminal as the pipeline.

// ReviewGroup is the serialized form of one group awaiting a decision.
type ReviewGroup struct {
	// ID is the group's position in the review file.
	ID int `json:"id"`
	// Program renders the shared transformation.
	Program string `json:"program"`
	// Structure is the shared structure signature.
	Structure string `json:"structure"`
	// Pairs lists the member replacements.
	Pairs []ReviewPair `json:"pairs"`
	// Decision is filled by the reviewer: "approve", "approve-backward"
	// or "reject" (empty or "pending" leaves the group undecided).
	Decision string `json:"decision"`
}

// ReviewPair is one member replacement in a review file.
type ReviewPair struct {
	LHS   string `json:"lhs"`
	RHS   string `json:"rhs"`
	Sites int    `json:"sites"`
}

// ReviewFile is the JSON document round-tripped through the reviewer.
type ReviewFile struct {
	Dataset string `json:"dataset"`
	Column  string `json:"column"`
	// Token identifies the ExportReview call that produced this file.
	// ApplyReview refuses files whose token does not match the session's
	// latest export: group ids address the exported list, and a second
	// export rebinds them, so applying a stale file would silently
	// decide the wrong groups. The token is deterministic (export
	// sequence number plus a digest of the exported groups), so a fresh
	// process that regenerates the same export accepts the same file.
	Token string `json:"token"`
	// Exported records how many groups the export produced. A reviewer
	// may trim Groups down to the subset they decided; Exported is what
	// lets a fresh process (the goldrec CLI's -apply-review) regenerate
	// the original export — and therefore the same token — without
	// knowing the export run's budget flag. ApplyReview itself only
	// trusts the token: a tampered Exported just regenerates a
	// different export whose token will not match.
	Exported int           `json:"exported"`
	Groups   []ReviewGroup `json:"groups"`
}

// ExportReview generates up to budget groups (0 = all) and writes them as
// a JSON review file. The session's group stream is consumed; keep the
// session alive to call ApplyReview with the filled-in file. Each export
// carries a fresh Token, and only the latest export's file is
// applicable.
func (s *Session) ExportReview(w io.Writer, budget int) (*ReviewFile, error) {
	rf := &ReviewFile{
		Dataset: s.cons.ds.Name,
		Column:  s.cons.ds.Attrs[s.col],
	}
	s.exported = s.exported[:0]
	for budget <= 0 || len(rf.Groups) < budget {
		g, ok := s.NextGroup()
		if !ok {
			break
		}
		rg := ReviewGroup{
			ID:        len(rf.Groups),
			Program:   g.Program,
			Structure: g.Structure,
		}
		for _, p := range g.Pairs {
			rg.Pairs = append(rg.Pairs, ReviewPair{LHS: p.LHS, RHS: p.RHS, Sites: p.Sites})
		}
		rf.Groups = append(rf.Groups, rg)
		s.exported = append(s.exported, g)
	}
	s.exportSeq++
	rf.Exported = len(rf.Groups)
	rf.Token = exportToken(s.exportSeq, rf)
	s.exportToken = rf.Token
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rf); err != nil {
		return nil, fmt.Errorf("goldrec: writing review file: %w", err)
	}
	return rf, nil
}

// exportToken derives the review-file token: the session's export
// sequence number plus an FNV-1a digest of the exported content. The
// digest part makes two exports with different groups (a different
// budget, or groups shrunk by applies in between) distinguishable even
// across process restarts, where the sequence number alone restarts
// at 1.
func exportToken(seq int, rf *ReviewFile) string {
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
	}
	// Frame the stream with group and pair counts: without them, one
	// group's trailing pairs and the next group's fields would
	// concatenate into the same byte stream as a differently-split
	// export, and two structurally different exports could share a
	// token.
	write(rf.Dataset, rf.Column)
	fmt.Fprintf(h, "#%d", len(rf.Groups))
	for _, g := range rf.Groups {
		fmt.Fprintf(h, "#%d", len(g.Pairs))
		write(g.Program, g.Structure)
		for _, p := range g.Pairs {
			write(p.LHS, p.RHS)
		}
	}
	return fmt.Sprintf("exp-%d-%016x", seq, h.Sum64())
}

// ApplyReview reads a filled-in review file and applies every approved
// group in the chosen direction, recording "reject" verdicts as well.
// It returns the per-group apply stats indexed by exported group id
// (the slice always spans the full export, so a file that decides only
// a subset of the exported groups leaves the untouched ids zero).
//
// The whole file is validated before anything is applied, and a file
// that fails validation changes nothing: the token must match the
// session's latest ExportReview, every id must be in the exported
// range and appear at most once, and a group that already has a
// decision cannot be decided again.
func (s *Session) ApplyReview(r io.Reader) ([]ApplyStats, error) {
	var rf ReviewFile
	if err := json.NewDecoder(r).Decode(&rf); err != nil {
		return nil, fmt.Errorf("goldrec: reading review file: %w", err)
	}
	if s.exportToken == "" {
		return nil, fmt.Errorf("goldrec: no outstanding review export to apply against")
	}
	if rf.Token != s.exportToken {
		return nil, fmt.Errorf("goldrec: review file token %q does not match the latest export %q (stale or foreign file; re-export and re-review)",
			rf.Token, s.exportToken)
	}
	decisions := make([]Decision, len(rf.Groups))
	seen := make(map[int]bool, len(rf.Groups))
	for i, rg := range rf.Groups {
		if rg.ID < 0 || rg.ID >= len(s.exported) {
			return nil, fmt.Errorf("goldrec: review group id %d out of range (%d exported)", rg.ID, len(s.exported))
		}
		if seen[rg.ID] {
			return nil, fmt.Errorf("goldrec: review group id %d appears more than once", rg.ID)
		}
		seen[rg.ID] = true
		d, err := ParseDecision(rg.Decision)
		if err != nil {
			return nil, fmt.Errorf("goldrec: review group %d has unknown decision %q", rg.ID, rg.Decision)
		}
		if d != Pending && s.exported[rg.ID].decision != Pending {
			return nil, fmt.Errorf("goldrec: review group %d already decided (%s)", rg.ID, s.exported[rg.ID].decision)
		}
		decisions[i] = d
	}
	out := make([]ApplyStats, len(s.exported))
	for i, rg := range rf.Groups {
		g := s.exported[rg.ID]
		switch decisions[i] {
		case Approved:
			out[rg.ID] = s.Apply(g, Forward)
		case ApprovedBackward:
			out[rg.ID] = s.Apply(g, Backward)
		case Rejected:
			s.record(g, Rejected, ApplyStats{})
		case Pending:
			// Undecided: no action. The group remains decidable through
			// Session.Decide by its issued id.
		}
	}
	return out, nil
}
