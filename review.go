package goldrec

import (
	"encoding/json"
	"fmt"
	"io"
)

// The review file workflow decouples group generation from human
// verification: ExportReview writes the pending groups as JSON, a human
// (or an external review UI) fills in each group's decision, and
// ApplyReview performs the approved replacements. This mirrors how the
// paper's verification step would run in production, where the expert is
// not sitting at the same terminal as the pipeline.

// ReviewGroup is the serialized form of one group awaiting a decision.
type ReviewGroup struct {
	// ID is the group's position in the review file.
	ID int `json:"id"`
	// Program renders the shared transformation.
	Program string `json:"program"`
	// Structure is the shared structure signature.
	Structure string `json:"structure"`
	// Pairs lists the member replacements.
	Pairs []ReviewPair `json:"pairs"`
	// Decision is filled by the reviewer: "approve", "approve-backward"
	// or "reject" (the default when empty).
	Decision string `json:"decision"`
}

// ReviewPair is one member replacement in a review file.
type ReviewPair struct {
	LHS   string `json:"lhs"`
	RHS   string `json:"rhs"`
	Sites int    `json:"sites"`
}

// ReviewFile is the JSON document round-tripped through the reviewer.
type ReviewFile struct {
	Dataset string        `json:"dataset"`
	Column  string        `json:"column"`
	Groups  []ReviewGroup `json:"groups"`
}

// ExportReview generates up to budget groups (0 = all) and writes them as
// a JSON review file. The session's group stream is consumed; keep the
// session alive to call ApplyReview with the filled-in file.
func (s *Session) ExportReview(w io.Writer, budget int) (*ReviewFile, error) {
	rf := &ReviewFile{
		Dataset: s.cons.ds.Name,
		Column:  s.cons.ds.Attrs[s.col],
	}
	s.exported = s.exported[:0]
	for budget <= 0 || len(rf.Groups) < budget {
		g, ok := s.NextGroup()
		if !ok {
			break
		}
		rg := ReviewGroup{
			ID:        len(rf.Groups),
			Program:   g.Program,
			Structure: g.Structure,
		}
		for _, p := range g.Pairs {
			rg.Pairs = append(rg.Pairs, ReviewPair{LHS: p.LHS, RHS: p.RHS, Sites: p.Sites})
		}
		rf.Groups = append(rf.Groups, rg)
		s.exported = append(s.exported, g)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rf); err != nil {
		return nil, fmt.Errorf("goldrec: writing review file: %w", err)
	}
	return rf, nil
}

// ApplyReview reads a filled-in review file and applies every approved
// group in the chosen direction. It returns the per-group apply stats
// indexed like the review file. The file must come from this session's
// ExportReview (group IDs address the exported group list).
func (s *Session) ApplyReview(r io.Reader) ([]ApplyStats, error) {
	var rf ReviewFile
	if err := json.NewDecoder(r).Decode(&rf); err != nil {
		return nil, fmt.Errorf("goldrec: reading review file: %w", err)
	}
	out := make([]ApplyStats, len(rf.Groups))
	for _, rg := range rf.Groups {
		if rg.ID < 0 || rg.ID >= len(s.exported) {
			return nil, fmt.Errorf("goldrec: review group id %d out of range (%d exported)", rg.ID, len(s.exported))
		}
		switch rg.Decision {
		case "approve":
			out[rg.ID] = s.Apply(s.exported[rg.ID], Forward)
		case "approve-backward":
			out[rg.ID] = s.Apply(s.exported[rg.ID], Backward)
		case "", "reject":
			// No action.
		default:
			return nil, fmt.Errorf("goldrec: review group %d has unknown decision %q", rg.ID, rg.Decision)
		}
	}
	return out, nil
}
