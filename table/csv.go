package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// CSVReader streams records from a clustered CSV one row at a time, so
// ingesting a large upload never buffers more than the rows themselves
// (the goldrecd upload path reads request bodies through it). The first
// row is the header; the column named keyCol is the clustering key (as
// produced by an upstream entity-resolution step); if sourceCol is
// non-empty, that column populates Record.Source and is removed from
// the attribute list.
type CSVReader struct {
	name    string
	cr      *csv.Reader
	header  []string
	attrs   []string
	attrIdx []int
	keyIdx  int
	srcIdx  int
	row     int // last row number read (header = 1), for error messages
}

// NewCSVReader reads the header row and validates the key and source
// columns.
func NewCSVReader(r io.Reader, name, keyCol, sourceCol string) (*CSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("table: csv %q is empty", name)
	}
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	s := &CSVReader{name: name, cr: cr, header: header, keyIdx: -1, srcIdx: -1, row: 1}
	for i, h := range header {
		if h == keyCol {
			s.keyIdx = i
		}
		if sourceCol != "" && h == sourceCol {
			s.srcIdx = i
		}
	}
	if s.keyIdx < 0 {
		return nil, fmt.Errorf("table: csv %q has no key column %q", name, keyCol)
	}
	if sourceCol != "" && s.srcIdx < 0 {
		return nil, fmt.Errorf("table: csv %q has no source column %q", name, sourceCol)
	}
	for i, h := range header {
		if i == s.keyIdx || i == s.srcIdx {
			continue
		}
		s.attrs = append(s.attrs, h)
		s.attrIdx = append(s.attrIdx, i)
	}
	return s, nil
}

// Attrs returns the attribute names (the header minus the key and
// source columns).
func (s *CSVReader) Attrs() []string { return s.attrs }

// Next returns the next row's clustering key and record. It returns
// io.EOF after the last row.
func (s *CSVReader) Next() (key string, rec Record, err error) {
	row, err := s.cr.Read()
	if err == io.EOF {
		return "", Record{}, io.EOF
	}
	if err != nil {
		return "", Record{}, fmt.Errorf("table: reading csv: %w", err)
	}
	s.row++
	if len(row) != len(s.header) {
		return "", Record{}, fmt.Errorf("table: csv %q row %d has %d fields, want %d",
			s.name, s.row, len(row), len(s.header))
	}
	rec = Record{Values: make([]string, len(s.attrs))}
	for vi, ci := range s.attrIdx {
		rec.Values[vi] = row[ci]
	}
	if s.srcIdx >= 0 {
		rec.Source = row[s.srcIdx]
	}
	return row[s.keyIdx], rec, nil
}

// ReadCSV reads a dataset from CSV; see CSVReader for the format. Rows
// sharing a key form one cluster; clusters are ordered by key. The rows
// stream through a CSVReader, so only the accumulated records — not a
// second full copy of the raw CSV — are held in memory.
func ReadCSV(r io.Reader, name, keyCol, sourceCol string) (*Dataset, error) {
	s, err := NewCSVReader(r, name, keyCol, sourceCol)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string][]Record)
	for {
		key, rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		byKey[key] = append(byKey[key], rec)
	}

	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	ds := &Dataset{Name: name, Attrs: s.Attrs(), Clusters: make([]Cluster, 0, len(keys))}
	for _, k := range keys {
		ds.Clusters = append(ds.Clusters, Cluster{Key: k, Records: byKey[k]})
	}
	return ds, nil
}

// ReadFlatCSV reads an *unclustered* CSV: the first row is the header,
// every following row one record. If sourceCol is non-empty that column
// populates Record.Source and is dropped from the attributes. Use
// goldrec.Resolve to cluster the records into a Dataset.
func ReadFlatCSV(r io.Reader, name, sourceCol string) (attrs []string, records []Record, err error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("table: csv %q is empty", name)
	}
	header := rows[0]
	srcIdx := -1
	for i, h := range header {
		if sourceCol != "" && h == sourceCol {
			srcIdx = i
		}
	}
	if sourceCol != "" && srcIdx < 0 {
		return nil, nil, fmt.Errorf("table: csv %q has no source column %q", name, sourceCol)
	}
	var attrIdx []int
	for i, h := range header {
		if i == srcIdx {
			continue
		}
		attrs = append(attrs, h)
		attrIdx = append(attrIdx, i)
	}
	for rn, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, nil, fmt.Errorf("table: csv %q row %d has %d fields, want %d", name, rn+2, len(row), len(header))
		}
		rec := Record{Values: make([]string, len(attrs))}
		for vi, ci := range attrIdx {
			rec.Values[vi] = row[ci]
		}
		if srcIdx >= 0 {
			rec.Source = row[srcIdx]
		}
		records = append(records, rec)
	}
	return attrs, records, nil
}

// WriteCSV writes the dataset as CSV with a leading key column (named
// keyCol) followed by the dataset attributes.
func WriteCSV(w io.Writer, d *Dataset, keyCol string) error {
	cw := csv.NewWriter(w)
	header := append([]string{keyCol}, d.Attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: writing csv header: %w", err)
	}
	for ci := range d.Clusters {
		for _, r := range d.Clusters[ci].Records {
			row := append([]string{d.Clusters[ci].Key}, r.Values...)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("table: writing csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
