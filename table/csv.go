package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// ReadCSV reads a dataset from CSV. The first row is the header. The
// column named keyCol is the clustering key (as produced by an upstream
// entity-resolution step); rows sharing a key form one cluster. If
// sourceCol is non-empty, that column populates Record.Source and is
// removed from the attribute list; otherwise Source is left empty.
func ReadCSV(r io.Reader, name, keyCol, sourceCol string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("table: csv %q is empty", name)
	}
	header := rows[0]
	keyIdx, srcIdx := -1, -1
	for i, h := range header {
		if h == keyCol {
			keyIdx = i
		}
		if sourceCol != "" && h == sourceCol {
			srcIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("table: csv %q has no key column %q", name, keyCol)
	}
	if sourceCol != "" && srcIdx < 0 {
		return nil, fmt.Errorf("table: csv %q has no source column %q", name, sourceCol)
	}

	var attrs []string
	var attrIdx []int
	for i, h := range header {
		if i == keyIdx || i == srcIdx {
			continue
		}
		attrs = append(attrs, h)
		attrIdx = append(attrIdx, i)
	}

	byKey := make(map[string][]Record)
	for rn, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("table: csv %q row %d has %d fields, want %d", name, rn+2, len(row), len(header))
		}
		rec := Record{Values: make([]string, len(attrs))}
		for vi, ci := range attrIdx {
			rec.Values[vi] = row[ci]
		}
		if srcIdx >= 0 {
			rec.Source = row[srcIdx]
		}
		key := row[keyIdx]
		byKey[key] = append(byKey[key], rec)
	}

	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	ds := &Dataset{Name: name, Attrs: attrs, Clusters: make([]Cluster, 0, len(keys))}
	for _, k := range keys {
		ds.Clusters = append(ds.Clusters, Cluster{Key: k, Records: byKey[k]})
	}
	return ds, nil
}

// ReadFlatCSV reads an *unclustered* CSV: the first row is the header,
// every following row one record. If sourceCol is non-empty that column
// populates Record.Source and is dropped from the attributes. Use
// goldrec.Resolve to cluster the records into a Dataset.
func ReadFlatCSV(r io.Reader, name, sourceCol string) (attrs []string, records []Record, err error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("table: csv %q is empty", name)
	}
	header := rows[0]
	srcIdx := -1
	for i, h := range header {
		if sourceCol != "" && h == sourceCol {
			srcIdx = i
		}
	}
	if sourceCol != "" && srcIdx < 0 {
		return nil, nil, fmt.Errorf("table: csv %q has no source column %q", name, sourceCol)
	}
	var attrIdx []int
	for i, h := range header {
		if i == srcIdx {
			continue
		}
		attrs = append(attrs, h)
		attrIdx = append(attrIdx, i)
	}
	for rn, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, nil, fmt.Errorf("table: csv %q row %d has %d fields, want %d", name, rn+2, len(row), len(header))
		}
		rec := Record{Values: make([]string, len(attrs))}
		for vi, ci := range attrIdx {
			rec.Values[vi] = row[ci]
		}
		if srcIdx >= 0 {
			rec.Source = row[srcIdx]
		}
		records = append(records, rec)
	}
	return attrs, records, nil
}

// WriteCSV writes the dataset as CSV with a leading key column (named
// keyCol) followed by the dataset attributes.
func WriteCSV(w io.Writer, d *Dataset, keyCol string) error {
	cw := csv.NewWriter(w)
	header := append([]string{keyCol}, d.Attrs...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: writing csv header: %w", err)
	}
	for ci := range d.Clusters {
		for _, r := range d.Clusters[ci].Records {
			row := append([]string{d.Clusters[ci].Key}, r.Values...)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("table: writing csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
