package table

import (
	"io"
	"strings"
	"testing"
)

// TestCSVReaderStreams drives the row-streaming reader directly: header
// parsing, per-row records, source extraction and EOF.
func TestCSVReaderStreams(t *testing.T) {
	in := `key,src,Name,Address
C1,a,Mary Lee,"9 St, 02141"
C2,b,James Smith,5th St
C1,c,M. Lee,9th St
`
	s, err := NewCSVReader(strings.NewReader(in), "t", "key", "src")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Attrs(); len(got) != 2 || got[0] != "Name" || got[1] != "Address" {
		t.Fatalf("attrs = %v", got)
	}
	type row struct {
		key, src, name, addr string
	}
	want := []row{
		{"C1", "a", "Mary Lee", "9 St, 02141"},
		{"C2", "b", "James Smith", "5th St"},
		{"C1", "c", "M. Lee", "9th St"},
	}
	for i, w := range want {
		key, rec, err := s.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if key != w.key || rec.Source != w.src || rec.Values[0] != w.name || rec.Values[1] != w.addr {
			t.Fatalf("row %d = key=%q rec=%+v, want %+v", i, key, rec, w)
		}
	}
	if _, _, err := s.Next(); err != io.EOF {
		t.Fatalf("after last row: %v, want io.EOF", err)
	}
	// EOF is sticky.
	if _, _, err := s.Next(); err != io.EOF {
		t.Fatalf("second read after EOF: %v", err)
	}
}

func TestCSVReaderErrors(t *testing.T) {
	if _, err := NewCSVReader(strings.NewReader(""), "t", "key", ""); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewCSVReader(strings.NewReader("a,b\n"), "t", "key", ""); err == nil {
		t.Error("missing key column accepted")
	}
	if _, err := NewCSVReader(strings.NewReader("key,b\n"), "t", "key", "src"); err == nil {
		t.Error("missing source column accepted")
	}

	// A short row surfaces as an error on that row, not at open time.
	s, err := NewCSVReader(strings.NewReader("key,a,b\nC1,x,y\nC2,x\n"), "t", "key", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Next(); err != nil {
		t.Fatalf("good row: %v", err)
	}
	if _, _, err := s.Next(); err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Fatalf("short row error = %v, want row 3 mentioned", err)
	}
}

// TestReadCSVStreamsEquivalence checks the streaming ReadCSV produces
// the same dataset as before: clusters ordered by key, rows in input
// order within a cluster.
func TestReadCSVStreamsEquivalence(t *testing.T) {
	in := `key,Name
B,b1
A,a1
B,b2
`
	ds, err := ReadCSV(strings.NewReader(in), "t", "key", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Clusters) != 2 || ds.Clusters[0].Key != "A" || ds.Clusters[1].Key != "B" {
		t.Fatalf("clusters = %+v", ds.Clusters)
	}
	if len(ds.Clusters[1].Records) != 2 || ds.Clusters[1].Records[0].Values[0] != "b1" {
		t.Fatalf("cluster B = %+v", ds.Clusters[1])
	}
}
