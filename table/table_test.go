package table

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Dataset {
	return &Dataset{
		Name:  "t",
		Attrs: []string{"A", "B"},
		Clusters: []Cluster{
			{Key: "k1", Records: []Record{
				{Source: "s1", Values: []string{"a1", "b1"}},
				{Source: "s2", Values: []string{"a2", "b2"}},
			}},
			{Key: "k2", Records: []Record{
				{Source: "s1", Values: []string{"x", "y"}},
			}},
		},
	}
}

func TestValueSetValue(t *testing.T) {
	ds := sample()
	c := Cell{Cluster: 0, Row: 1, Col: 0}
	if got := ds.Value(c); got != "a2" {
		t.Errorf("Value = %q", got)
	}
	ds.SetValue(c, "z")
	if got := ds.Value(c); got != "z" {
		t.Errorf("Value after set = %q", got)
	}
}

func TestColumnIndex(t *testing.T) {
	ds := sample()
	if ds.ColumnIndex("B") != 1 || ds.ColumnIndex("A") != 0 {
		t.Error("wrong column indexes")
	}
	if ds.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestValidate(t *testing.T) {
	ds := sample()
	if err := ds.Validate(); err != nil {
		t.Error(err)
	}
	ds.Clusters[0].Records[0].Values = []string{"only-one"}
	if err := ds.Validate(); err == nil {
		t.Error("short record should fail validation")
	}
	if err := (&Dataset{}).Validate(); err == nil {
		t.Error("attribute-less dataset should fail")
	}
	var nilDS *Dataset
	if err := nilDS.Validate(); err == nil {
		t.Error("nil dataset should fail")
	}
}

func TestClone(t *testing.T) {
	ds := sample()
	cp := ds.Clone()
	cp.SetValue(Cell{0, 0, 0}, "mutated")
	if ds.Value(Cell{0, 0, 0}) == "mutated" {
		t.Error("Clone shares storage")
	}
	if cp.NumRecords() != ds.NumRecords() {
		t.Error("Clone record counts differ")
	}
}

func TestClusterSizeStats(t *testing.T) {
	ds := sample()
	min, max, avg := ds.ClusterSizeStats()
	if min != 1 || max != 2 || avg != 1.5 {
		t.Errorf("stats = %d/%d/%v", min, max, avg)
	}
	empty := &Dataset{Attrs: []string{"A"}}
	if a, b, c := empty.ClusterSizeStats(); a != 0 || b != 0 || c != 0 {
		t.Error("empty dataset stats should be zero")
	}
}

func TestDistinctPairs(t *testing.T) {
	ds := &Dataset{
		Attrs: []string{"A"},
		Clusters: []Cluster{
			{Records: []Record{{Values: []string{"a"}}, {Values: []string{"b"}}, {Values: []string{"a"}}}},
			{Records: []Record{{Values: []string{"a"}}, {Values: []string{"b"}}}},
			{Records: []Record{{Values: []string{"c"}}, {Values: []string{"d"}}}},
		},
	}
	// {a,b} occurs in two clusters but counts once; {c,d} once → 2.
	if got := ds.DistinctPairs(0, false); got != 2 {
		t.Errorf("DistinctPairs = %d, want 2", got)
	}
	if got := ds.DistinctPairs(0, true); got != 4 {
		t.Errorf("ordered DistinctPairs = %d, want 4", got)
	}
}

func TestTruth(t *testing.T) {
	ds := sample()
	tr := NewTruth(ds)
	tr.Canon[0][0][0] = "canon"
	tr.Canon[0][1][0] = "canon"
	a := Cell{0, 0, 0}
	b := Cell{0, 1, 0}
	if !tr.Variant(a, b) {
		t.Error("equal canons should be variant")
	}
	tr.Canon[0][1][0] = "other"
	if tr.Variant(a, b) {
		t.Error("different canons should not be variant")
	}
	tr.Golden[1][0] = "gold"
	if tr.GoldenOf(1, 0) != "gold" {
		t.Error("GoldenOf mismatch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, "key"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "t", "key", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Clusters) != 2 || back.NumRecords() != 3 {
		t.Fatalf("round trip: %d clusters, %d records", len(back.Clusters), back.NumRecords())
	}
	if back.Attrs[0] != "A" || back.Attrs[1] != "B" {
		t.Errorf("attrs = %v", back.Attrs)
	}
	// Clusters are sorted by key on read.
	if back.Clusters[0].Key != "k1" {
		t.Errorf("first cluster key = %q", back.Clusters[0].Key)
	}
}

func TestReadCSVWithSource(t *testing.T) {
	csv := "isbn,seller,title\n1,alpha,Book A\n1,beta,Book A!\n2,alpha,Book B\n"
	ds, err := ReadCSV(strings.NewReader(csv), "books", "isbn", "seller")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Attrs) != 1 || ds.Attrs[0] != "title" {
		t.Fatalf("attrs = %v", ds.Attrs)
	}
	if ds.Clusters[0].Records[0].Source != "alpha" {
		t.Errorf("source = %q", ds.Clusters[0].Records[0].Source)
	}
	if len(ds.Clusters) != 2 {
		t.Errorf("clusters = %d", len(ds.Clusters))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x", "k", ""); err == nil {
		t.Error("empty csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "x", "missing", ""); err == nil {
		t.Error("missing key column should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "x", "a", "nosrc"); err == nil {
		t.Error("missing source column should fail")
	}
}

func TestDatasetString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "dataset") || !strings.Contains(s, "k1") {
		t.Errorf("String() = %q", s)
	}
}
