package table

// Truth carries ground-truth information about a dataset. Synthetic
// generators produce it exactly; for real data it would come from manual
// labeling (the paper manually labeled 1000 sampled pairs per dataset and
// collected golden records for 100 random clusters).
//
// Canon[ci][ri][col] is the canonical rendering of the logical value that
// cell (ci,ri,col) carries: two cells in the same cluster are a *variant
// pair* iff their canonical strings are equal, and a *conflict pair*
// otherwise. Golden[ci][col] is the true golden value of cluster ci.
type Truth struct {
	Canon  [][][]string
	Golden [][]string
}

// CanonOf returns the canonical string behind cell c.
func (t *Truth) CanonOf(c Cell) string {
	return t.Canon[c.Cluster][c.Row][c.Col]
}

// Variant reports whether the two cells (which must be in the same
// cluster and column to be meaningful) carry the same logical value.
func (t *Truth) Variant(a, b Cell) bool {
	return t.CanonOf(a) == t.CanonOf(b)
}

// GoldenOf returns the true golden value for a cluster's column.
func (t *Truth) GoldenOf(cluster, col int) string {
	return t.Golden[cluster][col]
}

// NewTruth allocates a Truth shaped like the dataset, with empty strings.
func NewTruth(d *Dataset) *Truth {
	t := &Truth{
		Canon:  make([][][]string, len(d.Clusters)),
		Golden: make([][]string, len(d.Clusters)),
	}
	for ci := range d.Clusters {
		t.Canon[ci] = make([][]string, len(d.Clusters[ci].Records))
		for ri := range d.Clusters[ci].Records {
			t.Canon[ci][ri] = make([]string, len(d.Attrs))
		}
		t.Golden[ci] = make([]string, len(d.Attrs))
	}
	return t
}
