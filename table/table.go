// Package table defines the clustered-record data model used throughout
// goldrec: a Dataset is a collection of clusters, each cluster a set of
// duplicate records produced by an upstream entity-resolution step.
//
// The model mirrors the input of the entity-consolidation problem in the
// paper (Definition 1): clusters of duplicate records whose variant values
// must be standardized before golden records can be constructed.
package table

import (
	"fmt"
	"sort"
	"strings"
)

// Record is one row from one data source.
type Record struct {
	// Source identifies the data source the record came from. It is
	// optional for standardization but used by source-aware truth
	// discovery.
	Source string
	// Values holds one string per attribute, parallel to Dataset.Attrs.
	Values []string
}

// Cluster is a set of records believed to describe the same real-world
// entity (for example, all listings of one book grouped by ISBN).
type Cluster struct {
	// Key is the clustering key (ISBN, ISSN, EIN, ...). Informational.
	Key string
	// Records are the duplicate records in this cluster.
	Records []Record
}

// Dataset is a collection of clusters over a fixed set of attributes.
type Dataset struct {
	Name     string
	Attrs    []string
	Clusters []Cluster
}

// Cell addresses a single value inside a dataset: record Row of cluster
// Cluster, attribute column Col.
type Cell struct {
	Cluster int
	Row     int
	Col     int
}

// ColumnIndex returns the index of the named attribute, or -1.
func (d *Dataset) ColumnIndex(attr string) int {
	for i, a := range d.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// Value returns the current value at cell c.
func (d *Dataset) Value(c Cell) string {
	return d.Clusters[c.Cluster].Records[c.Row].Values[c.Col]
}

// SetValue overwrites the value at cell c.
func (d *Dataset) SetValue(c Cell, v string) {
	d.Clusters[c.Cluster].Records[c.Row].Values[c.Col] = v
}

// NumRecords returns the total number of records across all clusters.
func (d *Dataset) NumRecords() int {
	n := 0
	for i := range d.Clusters {
		n += len(d.Clusters[i].Records)
	}
	return n
}

// Validate checks structural invariants: every record has exactly one
// value per attribute and no cluster is nil.
func (d *Dataset) Validate() error {
	if d == nil {
		return fmt.Errorf("table: nil dataset")
	}
	if len(d.Attrs) == 0 {
		return fmt.Errorf("table: dataset %q has no attributes", d.Name)
	}
	for ci := range d.Clusters {
		for ri, r := range d.Clusters[ci].Records {
			if len(r.Values) != len(d.Attrs) {
				return fmt.Errorf("table: dataset %q cluster %d record %d has %d values, want %d",
					d.Name, ci, ri, len(r.Values), len(d.Attrs))
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset. Standardization mutates cell
// values in place, so experiments that need a pristine copy clone first.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Name:     d.Name,
		Attrs:    append([]string(nil), d.Attrs...),
		Clusters: make([]Cluster, len(d.Clusters)),
	}
	for ci := range d.Clusters {
		c := d.Clusters[ci]
		nc := Cluster{Key: c.Key, Records: make([]Record, len(c.Records))}
		for ri, r := range c.Records {
			nc.Records[ri] = Record{
				Source: r.Source,
				Values: append([]string(nil), r.Values...),
			}
		}
		out.Clusters[ci] = nc
	}
	return out
}

// ClusterSizeStats reports min, max and mean cluster sizes (Table 6).
func (d *Dataset) ClusterSizeStats() (min, max int, avg float64) {
	if len(d.Clusters) == 0 {
		return 0, 0, 0
	}
	min = len(d.Clusters[0].Records)
	for i := range d.Clusters {
		n := len(d.Clusters[i].Records)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		avg += float64(n)
	}
	avg /= float64(len(d.Clusters))
	return min, max, avg
}

// DistinctPairs counts the distinct non-identical ordered value pairs that
// co-occur within clusters for the given column. This matches the
// "# of distinct value pairs" row of Table 6 in the paper (which counts
// unordered pairs; set ordered to true to count both directions).
func (d *Dataset) DistinctPairs(col int, ordered bool) int {
	type pair struct{ a, b string }
	seen := make(map[pair]struct{})
	for ci := range d.Clusters {
		vals := distinctValues(d, ci, col)
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				a, b := vals[i], vals[j]
				if a > b {
					a, b = b, a
				}
				seen[pair{a, b}] = struct{}{}
			}
		}
	}
	n := len(seen)
	if ordered {
		n *= 2
	}
	return n
}

func distinctValues(d *Dataset, ci, col int) []string {
	set := make(map[string]struct{})
	for _, r := range d.Clusters[ci].Records {
		set[r.Values[col]] = struct{}{}
	}
	vals := make([]string, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// String renders a compact multi-line view of the dataset, useful in
// examples and debugging. Long datasets are truncated.
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %q: %d clusters, %d records\n", d.Name, len(d.Clusters), d.NumRecords())
	const maxClusters = 5
	for ci := range d.Clusters {
		if ci >= maxClusters {
			fmt.Fprintf(&b, "... (%d more clusters)\n", len(d.Clusters)-maxClusters)
			break
		}
		fmt.Fprintf(&b, "cluster %d (key=%s):\n", ci, d.Clusters[ci].Key)
		for _, r := range d.Clusters[ci].Records {
			fmt.Fprintf(&b, "  %s\n", strings.Join(r.Values, " | "))
		}
	}
	return b.String()
}
