package goldrec

import (
	"context"
	"testing"
)

// approvedWarmStart reviews every group of a fresh paperTable1 Name
// session with the oracle and collects the approved programs as
// warm-start priors, deduplicated by canonical key.
func approvedWarmStart(t *testing.T) *WarmStart {
	t.Helper()
	ds, tr := paperTable1()
	cons, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cons.Column("Name")
	if err != nil {
		t.Fatal(err)
	}
	sess.RunBudget(0, sess.OracleVerifier(tr, 0))
	warm := &WarmStart{}
	seen := map[string]bool{}
	for id := 0; ; id++ {
		g, ok := sess.Group(id)
		if !ok {
			break
		}
		key := g.ProgramKey()
		if g.Decision() != Approved || seen[key] {
			continue
		}
		seen[key] = true
		warm.Programs = append(warm.Programs, WarmProgram{Key: key, Approvals: 1})
	}
	if len(warm.Programs) == 0 {
		t.Fatal("oracle approved no groups to warm-start from")
	}
	return warm
}

// TestWarmStartPreDecides replays one upload's approved programs into a
// second session over the same data: the groups they explain must come
// pre-decided — issued first, marked Warm, applied Forward — with the
// approve-rate prior seeded above the cold 0.5.
func TestWarmStartPreDecides(t *testing.T) {
	warm := approvedWarmStart(t)

	ds, tr := paperTable1()
	cons, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cons.ColumnIndexWarmCtx(context.Background(), 0, warm)
	if err != nil {
		t.Fatal(err)
	}
	stats := sess.Stats()
	if stats.WarmGroups == 0 {
		t.Fatal("no groups were pre-decided from warm priors")
	}
	if stats.WarmCells == 0 || stats.CellsChanged < stats.WarmCells {
		t.Fatalf("warm cells %d not reflected in CellsChanged %d", stats.WarmCells, stats.CellsChanged)
	}
	if stats.GroupsApplied < stats.WarmGroups || stats.GroupsSeen < stats.WarmGroups {
		t.Fatalf("warm groups not counted as applied/seen: %+v", stats)
	}
	if rate := sess.ApproveRate(); rate <= 0.5 {
		t.Errorf("ApproveRate = %v, want > 0.5 from seeded approvals", rate)
	}
	// Warm groups hold the first sequential ids and are already decided:
	// a fresh verdict on them must be refused.
	for id := 0; id < stats.WarmGroups; id++ {
		g, ok := sess.Group(id)
		if !ok {
			t.Fatalf("warm group %d not issued", id)
		}
		if !g.Warm || g.Decision() != Approved {
			t.Errorf("group %d: Warm=%v Decision=%v, want pre-approved warm", id, g.Warm, g.Decision())
		}
		if _, err := sess.Decide(id, Rejected); err == nil {
			t.Errorf("group %d: Decide on a warm pre-decided group should error", id)
		}
	}
	// ReviewState carries the provenance.
	st := sess.ReviewState()
	if !st.Groups[0].Warm {
		t.Error("ReviewState does not mark warm groups")
	}

	// Finishing the session with the oracle converges to the same
	// standardized column a cold run produces.
	sess.RunBudget(0, sess.OracleVerifier(tr, 0))
	coldDS, coldTr := paperTable1()
	coldCons, _ := New(coldDS)
	coldSess, _ := coldCons.Column("Name")
	coldSess.RunBudget(0, coldSess.OracleVerifier(coldTr, 0))
	for ci := range ds.Clusters {
		for ri := range ds.Clusters[ci].Records {
			got := ds.Clusters[ci].Records[ri].Values[0]
			want := coldDS.Clusters[ci].Records[ri].Values[0]
			if got != want {
				t.Errorf("cluster %d row %d = %q, want %q (cold run)", ci, ri, got, want)
			}
		}
	}
}

// TestWarmStartSkipsBadKeys: unparseable or empty warm keys must be
// ignored, leaving a plain cold session.
func TestWarmStartSkipsBadKeys(t *testing.T) {
	ds, _ := paperTable1()
	cons, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	warm := &WarmStart{Programs: []WarmProgram{
		{Key: "garbage", Approvals: 3},
		{Key: "g1:", Approvals: 3},
		{Key: "v9:C\"x\"", Approvals: 3},
	}}
	sess, err := cons.ColumnIndexWarmCtx(context.Background(), 0, warm)
	if err != nil {
		t.Fatal(err)
	}
	if stats := sess.Stats(); stats.WarmGroups != 0 {
		t.Fatalf("bad keys pre-decided %d groups", stats.WarmGroups)
	}
	if rate := sess.ApproveRate(); rate != 0.5 {
		t.Errorf("ApproveRate = %v, want cold 0.5 (skipped keys must not seed)", rate)
	}
}
